// Package timeline is the longitudinal observability layer: a bounded,
// allocation-free in-process time-series store sampled at the end of every
// stage-2 cycle, plus the analytics that turn the history into operational
// signals — flap detection (ranges whose ingress classification oscillates),
// drift detection (EWMA shift of an ingress's traffic share), and
// convergence tracking (cycles from range creation to first classification).
//
// The paper's headline claims are longitudinal — ingress mappings matter
// because they are stable over weeks, and deviations are what operators act
// on — so the store keeps enough history to see them without unbounded
// memory: each series is three fixed rings, tier 0 at per-cycle resolution
// and each older tier folding Downsample points of the tier below into one
// min/max/sum/count point. With the defaults (window 512, downsample 8) a
// series spans 512 + 512*8 + 512*64 ≈ 37k cycles ≈ 25 days at T=60s, in a
// few tens of KB.
//
// Collector binds the store and analyzer to a core engine via Config.OnCycle
// and the Config.OnEvent chain; all analytics consume only virtual-time
// inputs, so alerts are journaled events that replay byte-identically.
package timeline

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

const (
	// DefaultWindow is the per-tier ring length when Options.Window is 0.
	DefaultWindow = 512
	// DefaultDownsample is the tier fold factor when Options.Downsample is 0.
	DefaultDownsample = 8
	// DefaultMaxSeries bounds the series population (per-ingress series are
	// open-ended; the cap keeps a mis-mapped topology from minting series
	// without limit).
	DefaultMaxSeries = 256
	// tiers is the number of resolution levels per series.
	tiers = 3
)

// Point is one aggregated observation: Span cycles starting at Cycle,
// carrying the min/max/sum/count of the folded raw values. Tier-0 points
// have Span 1 and Count 1 (min = max = sum = the raw sample).
type Point struct {
	Cycle uint64  `json:"cycle"`
	Unix  int64   `json:"unix"` // statistical time of the first folded sample
	Span  uint32  `json:"span"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Sum   float64 `json:"sum"`
	Count uint32  `json:"count"`
}

// Avg returns the mean of the folded raw values.
func (p Point) Avg() float64 {
	if p.Count == 0 {
		return 0
	}
	return p.Sum / float64(p.Count)
}

// series is one named metric: three preallocated rings plus the fold
// accumulators feeding tiers 1 and 2. Appends allocate nothing.
type series struct {
	name  string
	ring  [tiers][]Point // fixed length = window
	n     [tiers]uint64  // points ever pushed per tier
	acc   [tiers - 1]Point
	accN  [tiers - 1]int
	total uint64 // raw samples ever appended
}

func (s *series) push(tier int, p Point) {
	s.ring[tier][s.n[tier]%uint64(len(s.ring[tier]))] = p
	s.n[tier]++
}

// fold merges p into the accumulator feeding tier level+1 and flushes it
// upward when Downsample points have been folded.
func (s *series) fold(level, factor int, p Point) {
	a := &s.acc[level]
	if s.accN[level] == 0 {
		*a = p
	} else {
		if p.Min < a.Min {
			a.Min = p.Min
		}
		if p.Max > a.Max {
			a.Max = p.Max
		}
		a.Sum += p.Sum
		a.Count += p.Count
		a.Span += p.Span
	}
	s.accN[level]++
	if s.accN[level] < factor {
		return
	}
	flushed := *a
	s.accN[level] = 0
	s.push(level+1, flushed)
	if level+1 < tiers-1 {
		s.fold(level+1, factor, flushed)
	}
}

func (s *series) append(p Point, factor int) {
	s.total++
	s.push(0, p)
	s.fold(0, factor, p)
}

// oldestRetained returns the cycle of the oldest point retained in tier, or
// (0, false) when the tier is empty.
func (s *series) oldestRetained(tier int) (uint64, bool) {
	if s.n[tier] == 0 {
		return 0, false
	}
	w := uint64(len(s.ring[tier]))
	if s.n[tier] < w {
		return s.ring[tier][0].Cycle, true
	}
	return s.ring[tier][s.n[tier]%w].Cycle, true
}

// window appends the retained points covering [from, to] to out, walking the
// tiers coarse to fine: each tier hands over to the next finer populated tier
// at the first point the finer tier fully covers, and a point whose span was
// already emitted by a coarser tier is skipped — so seams between tiers are
// contiguous and never double-covered, per-cycle resolution where tier 0
// still has it, downsampled history beyond. Points come out sorted by Cycle.
func (s *series) window(from, to uint64, out []Point) []Point {
	var starts [tiers]uint64
	var has [tiers]bool
	for tier := 0; tier < tiers; tier++ {
		starts[tier], has[tier] = s.oldestRetained(tier)
	}
	mark := len(out)
	// covered is the exclusive upper end of the span emitted so far; ring
	// retention is per-point, so a finer tier's oldest point may start inside
	// a coarse fold — the coarse point is emitted whole and the straddled
	// fine points skip.
	covered := uint64(0)
	for tier := tiers - 1; tier >= 0; tier-- {
		if !has[tier] {
			continue
		}
		// finer coverage boundary: the oldest retained point of the next
		// finer populated tier.
		finer := uint64(0)
		hasFiner := false
		for ft := tier - 1; ft >= 0; ft-- {
			if has[ft] {
				finer, hasFiner = starts[ft], true
				break
			}
		}
		w := uint64(len(s.ring[tier]))
		n := s.n[tier]
		cnt := n
		if cnt > w {
			cnt = w
		}
		for i := uint64(0); i < cnt; i++ {
			p := s.ring[tier][(n-cnt+i)%w]
			if p.Cycle < covered {
				continue // a coarser point already spans these cycles
			}
			if hasFiner && finer <= p.Cycle {
				break // the finer tier covers from here on, at better resolution
			}
			covered = p.Cycle + uint64(p.Span)
			if p.Cycle > to || p.Cycle+uint64(p.Span)-1 < from {
				continue
			}
			out = append(out, p)
		}
	}
	sort.Slice(out[mark:], func(i, j int) bool {
		return out[mark+i].Cycle < out[mark+j].Cycle
	})
	return out
}

// Store holds the named series under one RWMutex: single writer (the
// collector's OnCycle), concurrent readers (HTTP handlers, CSV export).
type Store struct {
	mu        sync.RWMutex
	window    int
	factor    int
	maxSeries int

	byName map[string]*series
	names  []string // insertion order; sorted views sort a copy

	points  uint64 // raw samples appended across all series
	dropped uint64 // appends refused because the series cap was reached
}

// NewStore builds a store; zero options take the defaults.
func NewStore(window, downsample, maxSeries int) *Store {
	if window <= 0 {
		window = DefaultWindow
	}
	if downsample <= 1 {
		downsample = DefaultDownsample
	}
	if maxSeries <= 0 {
		maxSeries = DefaultMaxSeries
	}
	return &Store{
		window:    window,
		factor:    downsample,
		maxSeries: maxSeries,
		byName:    make(map[string]*series),
	}
}

// Window returns the per-tier ring length.
func (st *Store) Window() int { return st.window }

// Downsample returns the tier fold factor.
func (st *Store) Downsample() int { return st.factor }

// Append records one raw sample for the named series at the given cycle.
// Unknown names create the series unless the cap is reached (accounted in
// DroppedSeries — a capped append is dropped, never mis-filed).
func (st *Store) Append(name string, cycle uint64, unix int64, v float64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	s := st.byName[name]
	if s == nil {
		if len(st.byName) >= st.maxSeries {
			st.dropped++
			return
		}
		s = &series{name: name}
		for t := 0; t < tiers; t++ {
			s.ring[t] = make([]Point, st.window)
		}
		st.byName[name] = s
		st.names = append(st.names, name)
	}
	s.append(Point{Cycle: cycle, Unix: unix, Span: 1, Min: v, Max: v, Sum: v, Count: 1}, st.factor)
	st.points++
}

// Names returns the series names, sorted.
func (st *Store) Names() []string {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]string, len(st.names))
	copy(out, st.names)
	sort.Strings(out)
	return out
}

// Len returns the number of series.
func (st *Store) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.byName)
}

// Points returns the total number of raw samples appended.
func (st *Store) Points() uint64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.points
}

// DroppedSeries returns how many appends were refused at the series cap.
func (st *Store) DroppedSeries() uint64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.dropped
}

// Get returns the retained points of one series covering cycles [from, to]
// (to == 0 means no upper bound), finest available resolution, sorted by
// cycle. Unknown names return nil.
func (st *Store) Get(name string, from, to uint64) []Point {
	st.mu.RLock()
	defer st.mu.RUnlock()
	s := st.byName[name]
	if s == nil {
		return nil
	}
	if to == 0 {
		to = ^uint64(0)
	}
	return s.window(from, to, nil)
}

// Series is the exported view of one series' windowed points.
type Series struct {
	Name   string  `json:"name"`
	Points []Point `json:"points"`
}

// WindowAll returns the windowed points of the named series (all series when
// names is empty), sorted by series name.
func (st *Store) WindowAll(names []string, from, to uint64) []Series {
	if len(names) == 0 {
		names = st.Names()
	} else {
		names = append([]string(nil), names...)
		sort.Strings(names)
	}
	out := make([]Series, 0, len(names))
	for _, n := range names {
		pts := st.Get(n, from, to)
		if pts == nil {
			continue
		}
		out = append(out, Series{Name: n, Points: pts})
	}
	return out
}

// WriteCSV streams the windowed points of the named series (all when names
// is empty) as CSV with the header
// series,cycle,unix,span,min,max,avg,count — the export the EXPERIMENTS.md
// figures consume.
func (st *Store) WriteCSV(w io.Writer, names []string, from, to uint64) error {
	if _, err := io.WriteString(w, "series,cycle,unix,span,min,max,avg,count\n"); err != nil {
		return err
	}
	for _, s := range st.WindowAll(names, from, to) {
		for _, p := range s.Points {
			_, err := fmt.Fprintf(w, "%s,%d,%d,%d,%s,%s,%s,%d\n",
				s.Name, p.Cycle, p.Unix, p.Span,
				strconv.FormatFloat(p.Min, 'g', -1, 64),
				strconv.FormatFloat(p.Max, 'g', -1, 64),
				strconv.FormatFloat(p.Avg(), 'g', -1, 64),
				p.Count)
			if err != nil {
				return err
			}
		}
	}
	return nil
}
