package trace

import (
	"sort"
	"sync/atomic"
	"time"
)

// Recorder is the bounded lock-free flight recorder: a fixed ring of span
// slots written with a seqlock-style publication stamp per slot. Writers
// claim a sequence number with one atomic add and publish field-by-field
// with atomic stores; readers copy a slot and re-check its stamp, discarding
// torn reads. No mutex is ever taken, so recording never blocks ingest and a
// scrape never blocks a writer — the journal ring's role (bounded, newest
// wins) with the journal's lock removed.
//
// The tear-detection contract is per slot: a reader observing stamp s before
// and after its field copy got the fields of span s; a mismatch (or stamp 0,
// the mid-write marker) means the slot was being overwritten and is skipped.
// Under overwrite pressure a Tail may therefore return slightly fewer than
// capacity spans; that is the price of never locking the hot path.
type Recorder struct {
	slots []slot
	n     atomic.Uint64
}

// slot holds one span, fully atomically. stamp is 0 while a writer is
// mid-publication and the span's sequence number once published.
type slot struct {
	stamp  atomic.Uint64
	phase  atomic.Uint32
	cycle  atomic.Uint64
	ranges atomic.Int64
	start  atomic.Int64 // wall-clock unix nanos
	wall   atomic.Int64
	cpu    atomic.Int64
}

// NewRecorder returns a flight recorder retaining the most recent capacity
// spans (minimum 1; 0 or negative selects DefaultCapacity).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{slots: make([]slot, capacity)}
}

// record publishes sp into the ring and returns its sequence number.
func (r *Recorder) record(sp Span) uint64 {
	seq := r.n.Add(1)
	s := &r.slots[(seq-1)%uint64(len(r.slots))]
	s.stamp.Store(0) // mark mid-write; readers skip or retry
	s.phase.Store(uint32(sp.Phase))
	s.cycle.Store(sp.Cycle)
	s.ranges.Store(sp.Ranges)
	s.start.Store(sp.Start.UnixNano())
	s.wall.Store(int64(sp.Wall))
	s.cpu.Store(int64(sp.CPU))
	s.stamp.Store(seq)
	return seq
}

// Recorded returns the total number of spans ever recorded.
func (r *Recorder) Recorded() uint64 { return r.n.Load() }

// Dropped returns how many spans have been overwritten out of the ring.
func (r *Recorder) Dropped() uint64 {
	n := r.n.Load()
	if c := uint64(len(r.slots)); n > c {
		return n - c
	}
	return 0
}

// Capacity returns the ring size.
func (r *Recorder) Capacity() int { return len(r.slots) }

// Tail returns up to limit of the most recent published spans, oldest
// first (limit <= 0 means the full retained window). Slots caught
// mid-overwrite are skipped, so the result may be slightly short under
// heavy concurrent recording.
func (r *Recorder) Tail(limit int) []Span {
	out := make([]Span, 0, len(r.slots))
	for i := range r.slots {
		if sp, ok := r.read(i); ok {
			out = append(out, sp)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	return out
}

// read copies slot i, retrying once on a detected tear.
func (r *Recorder) read(i int) (Span, bool) {
	s := &r.slots[i]
	for attempt := 0; attempt < 2; attempt++ {
		stamp := s.stamp.Load()
		if stamp == 0 {
			return Span{}, false // empty or mid-write
		}
		sp := Span{
			Seq:    stamp,
			Phase:  Phase(s.phase.Load()),
			Cycle:  s.cycle.Load(),
			Ranges: s.ranges.Load(),
			Start:  time.Unix(0, s.start.Load()).UTC(),
			Wall:   time.Duration(s.wall.Load()),
			CPU:    time.Duration(s.cpu.Load()),
		}
		if s.stamp.Load() == stamp {
			return sp, true
		}
	}
	return Span{}, false
}
