//go:build linux

package trace

import (
	"syscall"
	"time"
	"unsafe"
)

// clockThreadCPUTimeID is CLOCK_THREAD_CPUTIME_ID from <linux/time.h>.
const clockThreadCPUTimeID = 3

// threadCPUTime returns the CPU time consumed by the calling OS thread, or 0
// when the clock cannot be read. Goroutines can migrate threads between two
// reads, so span CPU durations are attribution-grade, not accounting-grade;
// stage-2 cycles run on one goroutine and are short, so in practice the
// numbers track wall time minus scheduling gaps.
func threadCPUTime() time.Duration {
	var ts syscall.Timespec
	if _, _, errno := syscall.RawSyscall(syscall.SYS_CLOCK_GETTIME,
		clockThreadCPUTimeID, uintptr(unsafe.Pointer(&ts)), 0); errno != 0 {
		return 0
	}
	return time.Duration(ts.Nano())
}
