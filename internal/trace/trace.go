// Package trace is the pipeline latency-attribution layer of the IPD
// reproduction: a low-overhead span recorder threaded through the whole
// pipeline — flow-trace decode, statistical-time binning, stage-1 Observe
// (sampled 1-in-N), and every phase of a stage-2 cycle (snapshot, decay,
// classify, split, join, drop). Each span carries the cycle id, a range
// count, and wall/CPU durations.
//
// Spans land in a bounded lock-free flight recorder (Recorder) that HTTP
// introspection can tail while ingest runs, feed per-phase duration
// histograms in a telemetry.Registry, and fan out to an optional OnSpan hook
// (the cycle watchdog in internal/core subscribes there). A recorded flight
// can be exported in Chrome trace-event format (WriteChrome) and loaded into
// Perfetto or chrome://tracing for visual latency attribution.
//
// The paper's deployment viability argument (§5.7) is that every stage-2
// cycle finishes well inside the bucket interval t; this package is what
// lets a running instance prove that, and say where the time went when it
// does not.
package trace

import (
	"fmt"
	"sync/atomic"
	"time"

	"ipd/internal/telemetry"
)

// Phase identifies which pipeline stage a span measures.
type Phase uint8

const (
	// PhaseRead is one flow-trace record decode (sampled 1-in-N).
	PhaseRead Phase = iota
	// PhaseBin is one statistical-time binning decision (sampled 1-in-N).
	PhaseBin
	// PhaseObserve is one stage-1 ingest call (sampled 1-in-N).
	PhaseObserve
	// PhaseSnapshot collects the active range set at the top of a cycle.
	PhaseSnapshot
	// PhaseDecay decays, expires, and invalidates classified ranges.
	PhaseDecay
	// PhaseClassify expires per-IP state and classifies unclassified ranges.
	PhaseClassify
	// PhaseSplit applies the cycle's pending range splits.
	PhaseSplit
	// PhaseJoin merges agreeing classified sibling ranges bottom-up.
	PhaseJoin
	// PhaseDrop collapses empty-idle sibling pairs (state cleanup).
	PhaseDrop
	// PhaseGovern evaluates the resource governor's budgets and runs the
	// emergency compaction pass when one is breached.
	PhaseGovern
	// PhaseCycle is the whole stage-2 cycle (umbrella span; the watchdog
	// keys its overrun and stall checks off these).
	PhaseCycle

	numPhases
)

var phaseNames = [numPhases]string{
	PhaseRead:     "read",
	PhaseBin:      "bin",
	PhaseObserve:  "observe",
	PhaseSnapshot: "snapshot",
	PhaseDecay:    "decay",
	PhaseClassify: "classify",
	PhaseSplit:    "split",
	PhaseJoin:     "join",
	PhaseDrop:     "drop",
	PhaseGovern:   "govern",
	PhaseCycle:    "cycle",
}

// String returns the phase's wire name (the value of the phase label).
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", uint8(p))
}

// MarshalText renders the phase name, so spans JSON-encode readably.
func (p Phase) MarshalText() ([]byte, error) { return []byte(p.String()), nil }

// UnmarshalText parses a phase name.
func (p *Phase) UnmarshalText(b []byte) error {
	ph, ok := ParsePhase(string(b))
	if !ok {
		return fmt.Errorf("trace: unknown phase %q", b)
	}
	*p = ph
	return nil
}

// ParsePhase resolves a phase name (as rendered by Phase.String).
func ParsePhase(s string) (Phase, bool) {
	for i, n := range phaseNames {
		if n == s {
			return Phase(i), true
		}
	}
	return 0, false
}

// Stage1 reports whether the phase is a per-record (stage-1 side) span, as
// opposed to a stage-2 cycle phase.
func (p Phase) Stage1() bool { return p <= PhaseObserve }

// Span is one recorded pipeline interval.
type Span struct {
	// Seq is the recorder sequence number (monotonic from 1).
	Seq uint64 `json:"seq"`
	// Phase identifies the pipeline stage measured.
	Phase Phase `json:"phase"`
	// Cycle is the stage-2 cycle id the span belongs to (0 for stage-1
	// spans recorded before the first cycle).
	Cycle uint64 `json:"cycle"`
	// Ranges is the phase's range count: ranges visited for per-range
	// phases, mutations applied for split/join/drop, active ranges after
	// the cycle for PhaseCycle, 0 for per-record spans.
	Ranges int64 `json:"ranges"`
	// Start is the wall-clock start time.
	Start time.Time `json:"start"`
	// Wall is the wall-clock duration.
	Wall time.Duration `json:"wall_ns"`
	// CPU is the OS-thread CPU time consumed between start and end, where
	// the platform supports reading it (Linux); 0 elsewhere. Goroutine
	// migration between threads can under-report; treat it as attribution,
	// not accounting.
	CPU time.Duration `json:"cpu_ns"`
}

// Options configures a Tracer.
type Options struct {
	// Capacity bounds the flight-recorder ring; 0 means DefaultCapacity.
	Capacity int
	// SampleN samples per-record spans (read, bin, observe) 1-in-N, using
	// the same deterministic xorshift64* idiom as the flow package's packet
	// sampler. N <= 1 records every call; 0 means DefaultSampleN. Stage-2
	// phase spans are never sampled — there are only a handful per cycle.
	SampleN int
	// Seed seeds the span sampler (0 selects a fixed default, so runs are
	// reproducible).
	Seed uint64
	// Registry, when non-nil, receives per-phase duration histograms
	// (ipd_phase_duration_seconds{phase="..."}) and the recorder's
	// accounting (ipd_trace_spans_total, ipd_trace_span_overflow_total).
	Registry *telemetry.Registry
}

// DefaultCapacity is the flight-recorder ring size when unset: enough for
// ~1300 cycles of stage-2 spans, a few MB at worst.
const DefaultCapacity = 8192

// DefaultSampleN is the default 1-in-N sampling for per-record spans.
const DefaultSampleN = 1024

// Tracer produces spans into a flight recorder, per-phase histograms, and an
// optional hook. All methods are safe for concurrent use once configured;
// SetOnSpan must be called during setup, before spans flow.
//
// A nil *Tracer is a valid disabled tracer: Begin returns an inert timer and
// the hot paths' only cost is the nil check.
type Tracer struct {
	rec     *Recorder
	sampleN uint64
	state   atomic.Uint64
	onSpan  func(Span)

	// hists holds one duration histogram per phase (nil without a
	// registry); indexed by Phase.
	hists [numPhases]*telemetry.Histogram
}

// PhaseDurationBuckets are the bounds of the per-phase histograms: 1µs to
// 10s, one bucket per half decade (per-record spans sit in the microsecond
// buckets, deployment-scale cycle phases in the millisecond-to-second ones).
func PhaseDurationBuckets() []float64 {
	return []float64{1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1, 3, 10}
}

// New returns a tracer with the given options.
func New(opts Options) *Tracer {
	capacity := opts.Capacity
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	sampleN := opts.SampleN
	if sampleN == 0 {
		sampleN = DefaultSampleN
	}
	if sampleN < 1 {
		sampleN = 1
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	t := &Tracer{rec: NewRecorder(capacity), sampleN: uint64(sampleN)}
	t.state.Store(seed)
	if reg := opts.Registry; reg != nil {
		for p := Phase(0); p < numPhases; p++ {
			t.hists[p] = reg.LabeledHistogram("ipd_phase_duration_seconds",
				[]telemetry.Label{{Name: "phase", Value: p.String()}},
				"Wall-clock duration of pipeline phase spans (per-record phases are sampled 1-in-N).",
				PhaseDurationBuckets())
		}
		rec := t.rec
		reg.CounterFunc("ipd_trace_spans_total",
			"Spans recorded by the pipeline tracer.", func() float64 {
				return float64(rec.Recorded())
			})
		reg.CounterFunc("ipd_trace_span_overflow_total",
			"Spans overwritten out of the flight-recorder ring.", func() float64 {
				return float64(rec.Dropped())
			})
	}
	return t
}

// Recorder returns the tracer's flight recorder (never nil for a non-nil
// tracer).
func (t *Tracer) Recorder() *Recorder { return t.rec }

// SetOnSpan installs a hook invoked synchronously for every completed span
// (the cycle watchdog subscribes here). Call during setup, before any span
// is recorded; fn must be safe for concurrent use and return quickly.
func (t *Tracer) SetOnSpan(fn func(Span)) { t.onSpan = fn }

// Sample reports whether the next per-record span should be taken (1-in-N,
// deterministic xorshift64* — the flow.Sampler idiom, made atomic so the
// reader and engine goroutines can share one tracer). Nil-safe: a nil tracer
// never samples.
func (t *Tracer) Sample() bool {
	if t == nil {
		return false
	}
	if t.sampleN <= 1 {
		return true
	}
	for {
		old := t.state.Load()
		s := old
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		if t.state.CompareAndSwap(old, s) {
			return (s*0x2545f4914f6cdd1d)%t.sampleN == 0
		}
	}
}

// SpanTimer measures one span between Begin and End. The zero value (from a
// nil tracer) is inert.
type SpanTimer struct {
	t     *Tracer
	phase Phase
	cycle uint64
	start time.Time
	cpu   time.Duration
}

// Begin starts a span. On a nil tracer it returns an inert timer, so call
// sites need no nil check beyond their sampling guard.
func (t *Tracer) Begin(p Phase, cycle uint64) SpanTimer {
	if t == nil {
		return SpanTimer{}
	}
	return SpanTimer{t: t, phase: p, cycle: cycle, start: time.Now(), cpu: threadCPUTime()}
}

// End completes the span with the given range count and delivers it to the
// recorder, the per-phase histogram, and the OnSpan hook. Inert timers
// return immediately.
func (s SpanTimer) End(ranges int) {
	if s.t == nil {
		return
	}
	wall := time.Since(s.start)
	var cpu time.Duration
	if s.cpu > 0 {
		if end := threadCPUTime(); end > s.cpu {
			cpu = end - s.cpu
		}
	}
	sp := Span{
		Phase:  s.phase,
		Cycle:  s.cycle,
		Ranges: int64(ranges),
		Start:  s.start,
		Wall:   wall,
		CPU:    cpu,
	}
	sp.Seq = s.t.rec.record(sp)
	if h := s.t.hists[s.phase]; h != nil {
		h.Observe(wall.Seconds())
	}
	if fn := s.t.onSpan; fn != nil {
		fn(sp)
	}
}
