package trace

import (
	"bufio"
	"encoding/json"
	"io"
)

// chromeEvent is one entry of the Chrome trace-event format (the JSON form
// Perfetto and chrome://tracing load). Complete events (ph "X") carry
// microsecond ts/dur; metadata events (ph "M") name the process and the two
// logical threads the spans are laid out on.
type chromeEvent struct {
	Name string      `json:"name"`
	Cat  string      `json:"cat,omitempty"`
	Ph   string      `json:"ph"`
	Ts   float64     `json:"ts"`
	Dur  *float64    `json:"dur,omitempty"`
	Pid  int         `json:"pid"`
	Tid  int         `json:"tid"`
	Args *chromeArgs `json:"args,omitempty"`
}

// chromeArgs are the per-span details shown in the trace viewer's detail
// pane. A struct (not a map) keeps the export byte-stable for golden tests.
type chromeArgs struct {
	Seq    uint64  `json:"seq,omitempty"`
	Cycle  uint64  `json:"cycle"`
	Ranges int64   `json:"ranges"`
	CPUUs  float64 `json:"cpu_us"`
	Name   string  `json:"name,omitempty"`
}

// chromeTrace is the top-level JSON object; the object form (rather than the
// bare array) lets viewers pick a display unit.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Chrome trace lane ids: stage-1 per-record spans and stage-2 cycle phases
// render as two "threads" of one "process".
const (
	chromePid      = 1
	chromeTidStage = 1 // stage-1: read/bin/observe samples
	chromeTidCycle = 2 // stage-2: cycle phases
)

// WriteChrome writes spans in Chrome trace-event format, loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing. Spans should be in
// recording order (Recorder.Tail returns them that way).
func WriteChrome(w io.Writer, spans []Span) error {
	events := make([]chromeEvent, 0, len(spans)+3)
	events = append(events,
		chromeEvent{Name: "process_name", Ph: "M", Pid: chromePid, Tid: 0,
			Args: &chromeArgs{Name: "ipd"}},
		chromeEvent{Name: "thread_name", Ph: "M", Pid: chromePid, Tid: chromeTidStage,
			Args: &chromeArgs{Name: "stage1 (sampled records)"}},
		chromeEvent{Name: "thread_name", Ph: "M", Pid: chromePid, Tid: chromeTidCycle,
			Args: &chromeArgs{Name: "stage2 (cycle phases)"}},
	)
	for _, sp := range spans {
		tid := chromeTidCycle
		cat := "stage2"
		if sp.Phase.Stage1() {
			tid = chromeTidStage
			cat = "stage1"
		}
		dur := float64(sp.Wall.Nanoseconds()) / 1e3
		events = append(events, chromeEvent{
			Name: sp.Phase.String(),
			Cat:  cat,
			Ph:   "X",
			Ts:   float64(sp.Start.UnixNano()) / 1e3,
			Dur:  &dur,
			Pid:  chromePid,
			Tid:  tid,
			Args: &chromeArgs{
				Seq:    sp.Seq,
				Cycle:  sp.Cycle,
				Ranges: sp.Ranges,
				CPUUs:  float64(sp.CPU.Nanoseconds()) / 1e3,
			},
		})
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.SetIndent("", " ")
	if err := enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"}); err != nil {
		return err
	}
	return bw.Flush()
}
