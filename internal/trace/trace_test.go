package trace

import (
	"encoding/json"
	"sync"
	"testing"
	"time"

	"ipd/internal/telemetry"
)

func TestPhaseTextRoundTrip(t *testing.T) {
	for p := Phase(0); p < numPhases; p++ {
		b, err := p.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back Phase
		if err := back.UnmarshalText(b); err != nil || back != p {
			t.Errorf("phase %v round-trip: got %v, err %v", p, back, err)
		}
	}
	var p Phase
	if err := p.UnmarshalText([]byte("bogus")); err == nil {
		t.Error("UnmarshalText accepted a bogus phase")
	}
	if !PhaseObserve.Stage1() || PhaseCycle.Stage1() {
		t.Error("Stage1 classification wrong: observe is stage-1, cycle is not")
	}
}

// TestSamplerDeterministic pins the 1-in-N span sampler: same seed, same
// decisions, and a keep rate in the right ballpark.
func TestSamplerDeterministic(t *testing.T) {
	a := New(Options{SampleN: 16, Seed: 7})
	b := New(Options{SampleN: 16, Seed: 7})
	kept := 0
	for i := 0; i < 16000; i++ {
		ka, kb := a.Sample(), b.Sample()
		if ka != kb {
			t.Fatalf("decision %d diverged between identical tracers", i)
		}
		if ka {
			kept++
		}
	}
	if kept < 500 || kept > 1500 {
		t.Errorf("1-in-16 sampler kept %d of 16000 (want ~1000)", kept)
	}
	var nilTracer *Tracer
	if nilTracer.Sample() {
		t.Error("nil tracer sampled")
	}
}

// TestSpanRecording covers the Begin/End path end-to-end: span fields,
// recorder tail order, per-phase histograms, and the OnSpan hook.
func TestSpanRecording(t *testing.T) {
	reg := telemetry.NewRegistry()
	var hooked []Span
	tr := New(Options{Capacity: 16, Registry: reg})
	tr.SetOnSpan(func(sp Span) { hooked = append(hooked, sp) })

	st := tr.Begin(PhaseClassify, 3)
	time.Sleep(time.Millisecond)
	st.End(42)

	spans := tr.Recorder().Tail(0)
	if len(spans) != 1 {
		t.Fatalf("recorded %d spans, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Seq != 1 || sp.Phase != PhaseClassify || sp.Cycle != 3 || sp.Ranges != 42 {
		t.Errorf("span = %+v, want seq 1 classify cycle 3 ranges 42", sp)
	}
	if sp.Wall < time.Millisecond {
		t.Errorf("span wall = %v, want >= 1ms", sp.Wall)
	}
	if sp.CPU > sp.Wall+10*time.Millisecond {
		t.Errorf("span cpu %v wildly exceeds wall %v", sp.CPU, sp.Wall)
	}
	if len(hooked) != 1 || hooked[0].Seq != 1 {
		t.Errorf("OnSpan hook got %+v, want the one recorded span", hooked)
	}

	// The labeled per-phase histogram counted the observation.
	h := reg.LabeledHistogram("ipd_phase_duration_seconds",
		[]telemetry.Label{{Name: "phase", Value: "classify"}}, "", PhaseDurationBuckets())
	if s := h.Snapshot(); s.Count != 1 {
		t.Errorf("classify histogram count = %d, want 1", s.Count)
	}

	// An inert timer from a nil tracer records nothing and does not panic.
	var nilTracer *Tracer
	nilTracer.Begin(PhaseCycle, 0).End(0)
}

// TestRecorderOverflow checks the bounded-ring contract: newest spans win,
// Dropped counts the overwritten ones.
func TestRecorderOverflow(t *testing.T) {
	r := NewRecorder(8)
	for i := 1; i <= 20; i++ {
		r.record(Span{Phase: PhaseObserve, Cycle: uint64(i)})
	}
	if got := r.Recorded(); got != 20 {
		t.Errorf("Recorded = %d, want 20", got)
	}
	if got := r.Dropped(); got != 12 {
		t.Errorf("Dropped = %d, want 12", got)
	}
	spans := r.Tail(0)
	if len(spans) != 8 {
		t.Fatalf("Tail len = %d, want 8", len(spans))
	}
	for i, sp := range spans {
		if want := uint64(13 + i); sp.Seq != want {
			t.Errorf("tail[%d].Seq = %d, want %d (oldest first)", i, sp.Seq, want)
		}
	}
	if got := r.Tail(3); len(got) != 3 || got[0].Seq != 18 {
		t.Errorf("Tail(3) = %+v, want seqs 18..20", got)
	}
}

// TestRecorderConcurrent hammers the ring from many writers while readers
// tail it; run under -race this is the lock-freedom proof. Readers must only
// ever see internally consistent spans (Seq matches the cycle the writer
// stored with it).
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(64)
	const writers, perWriter = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.record(Span{Phase: PhaseObserve, Cycle: 0, Ranges: 7})
			}
		}()
	}
	var readerWG sync.WaitGroup
	for rd := 0; rd < 4; rd++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, sp := range r.Tail(0) {
					if sp.Ranges != 7 || sp.Phase != PhaseObserve {
						t.Errorf("torn span escaped: %+v", sp)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readerWG.Wait()
	if got := r.Recorded(); got != writers*perWriter {
		t.Errorf("Recorded = %d, want %d", got, writers*perWriter)
	}
	// Every retained span is readable once the writers stop.
	if got := len(r.Tail(0)); got != 64 {
		t.Errorf("quiescent Tail len = %d, want full ring (64)", got)
	}
}

// TestSpanJSON pins the wire form the /ipd/traces endpoint serves.
func TestSpanJSON(t *testing.T) {
	sp := Span{Seq: 9, Phase: PhaseJoin, Cycle: 4, Ranges: 12,
		Start: time.Unix(1700000000, 0).UTC(), Wall: 1500 * time.Microsecond, CPU: time.Millisecond}
	b, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if m["phase"] != "join" {
		t.Errorf("phase marshals as %v, want \"join\"", m["phase"])
	}
	if m["wall_ns"] != 1.5e6 {
		t.Errorf("wall_ns = %v, want 1.5e6", m["wall_ns"])
	}
	var back Span
	if err := json.Unmarshal(b, &back); err != nil || back != sp {
		t.Errorf("round-trip = %+v (err %v), want %+v", back, err, sp)
	}
}
