package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenSpans is a fixed flight covering both lanes: a sampled stage-1
// observe and one full stage-2 cycle.
func goldenSpans() []Span {
	base := time.Unix(1700000000, 0).UTC()
	at := func(off time.Duration) time.Time { return base.Add(off) }
	return []Span{
		{Seq: 1, Phase: PhaseObserve, Cycle: 0, Ranges: 0, Start: at(0), Wall: 2 * time.Microsecond, CPU: time.Microsecond},
		{Seq: 2, Phase: PhaseSnapshot, Cycle: 1, Ranges: 6, Start: at(time.Second), Wall: 30 * time.Microsecond, CPU: 25 * time.Microsecond},
		{Seq: 3, Phase: PhaseDecay, Cycle: 1, Ranges: 2, Start: at(time.Second + 40*time.Microsecond), Wall: 15 * time.Microsecond, CPU: 14 * time.Microsecond},
		{Seq: 4, Phase: PhaseClassify, Cycle: 1, Ranges: 4, Start: at(time.Second + 60*time.Microsecond), Wall: 120 * time.Microsecond, CPU: 110 * time.Microsecond},
		{Seq: 5, Phase: PhaseSplit, Cycle: 1, Ranges: 1, Start: at(time.Second + 200*time.Microsecond), Wall: 8 * time.Microsecond, CPU: 8 * time.Microsecond},
		{Seq: 6, Phase: PhaseJoin, Cycle: 1, Ranges: 1, Start: at(time.Second + 220*time.Microsecond), Wall: 10 * time.Microsecond, CPU: 9 * time.Microsecond},
		{Seq: 7, Phase: PhaseDrop, Cycle: 1, Ranges: 0, Start: at(time.Second + 240*time.Microsecond), Wall: 5 * time.Microsecond, CPU: 5 * time.Microsecond},
		{Seq: 8, Phase: PhaseCycle, Cycle: 1, Ranges: 7, Start: at(time.Second), Wall: 250 * time.Microsecond, CPU: 230 * time.Microsecond},
	}
}

// TestWriteChromeGolden pins the exact export bytes. Regenerate with
// go test ./internal/trace -run Golden -update after an intentional change.
func TestWriteChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, goldenSpans()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome export drifted from golden:\n got:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestWriteChromeSchema validates the export against the trace-event-format
// contract Perfetto relies on: a traceEvents array whose entries carry
// ph/ts/pid/tid, complete events ("X") with non-negative µs durations, and
// metadata naming the process and both lanes.
func TestWriteChromeSchema(t *testing.T) {
	var buf bytes.Buffer
	spans := goldenSpans()
	if err := WriteChrome(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string   `json:"name"`
			Cat  string   `json:"cat"`
			Ph   string   `json:"ph"`
			Ts   *float64 `json:"ts"`
			Dur  *float64 `json:"dur"`
			Pid  int      `json:"pid"`
			Tid  int      `json:"tid"`
			Args struct {
				Seq    uint64  `json:"seq"`
				Cycle  uint64  `json:"cycle"`
				Ranges int64   `json:"ranges"`
				CPUUs  float64 `json:"cpu_us"`
				Name   string  `json:"name"`
			} `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want \"ms\"", doc.DisplayTimeUnit)
	}
	if want := len(spans) + 3; len(doc.TraceEvents) != want {
		t.Fatalf("export has %d events, want %d (spans + 3 metadata)", len(doc.TraceEvents), want)
	}

	var meta, complete int
	names := map[string]bool{}
	for i, ev := range doc.TraceEvents {
		if ev.Pid != chromePid {
			t.Errorf("event %d pid = %d, want %d", i, ev.Pid, chromePid)
		}
		switch ev.Ph {
		case "M":
			meta++
			names[ev.Args.Name] = true
		case "X":
			complete++
			if ev.Ts == nil || ev.Dur == nil || *ev.Dur < 0 {
				t.Errorf("complete event %d missing ts/dur: %+v", i, ev)
				continue
			}
			sp := spans[complete-1]
			if got, want := *ev.Dur, float64(sp.Wall.Nanoseconds())/1e3; got != want {
				t.Errorf("event %d dur = %v µs, want %v", i, got, want)
			}
			if got, want := *ev.Ts, float64(sp.Start.UnixNano())/1e3; got != want {
				t.Errorf("event %d ts = %v µs, want %v", i, got, want)
			}
			if ev.Name != sp.Phase.String() || ev.Args.Seq != sp.Seq || ev.Args.Cycle != sp.Cycle {
				t.Errorf("event %d identity mismatch: %+v vs span %+v", i, ev, sp)
			}
			wantTid, wantCat := chromeTidCycle, "stage2"
			if sp.Phase.Stage1() {
				wantTid, wantCat = chromeTidStage, "stage1"
			}
			if ev.Tid != wantTid || ev.Cat != wantCat {
				t.Errorf("event %d lane = tid %d cat %q, want tid %d cat %q", i, ev.Tid, ev.Cat, wantTid, wantCat)
			}
		default:
			t.Errorf("event %d has unexpected ph %q", i, ev.Ph)
		}
	}
	if meta != 3 || complete != len(spans) {
		t.Errorf("event mix = %d metadata + %d complete, want 3 + %d", meta, complete, len(spans))
	}
	if !names["ipd"] {
		t.Error("process_name metadata missing the \"ipd\" process")
	}
}
