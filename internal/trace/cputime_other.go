//go:build !linux

package trace

import "time"

// threadCPUTime is unavailable off Linux; spans carry CPU = 0 there.
func threadCPUTime() time.Duration { return 0 }
