// Package eval implements the paper's validation methodology (§5.1) and the
// longitudinal analyses of §5.2-§5.6: LPM-based accuracy against ground
// truth flow data, the interface/router/PoP miss taxonomy, range stability
// tracking, matching/stable address-space comparison, IPD-vs-BGP prefix
// specificity, ingress/egress symmetry, and peering-violation detection.
//
// The package depends only on the engine output types, the topology, and
// the BGP substrate; the experiment drivers wire it to the synthetic
// scenario.
package eval

import (
	"net/netip"
	"sort"
	"time"

	"ipd/internal/core"
	"ipd/internal/flow"
	"ipd/internal/topology"
	"ipd/internal/trie"
)

// Predictor answers "where would IPD say this flow enters?" from a frozen
// LPM table, exactly as the §5.1 validation does: "we create a Longest
// Prefix Match lookup table from the IPD output ... and compare the actual
// ingress router and interface with the IPD output".
type Predictor struct {
	table *trie.Trie[flow.Ingress]
	topo  *topology.T
}

// NewPredictor freezes the given lookup table. topo supplies bundle folding
// and the miss taxonomy; it must be the same topology the engine used.
func NewPredictor(table *trie.Trie[flow.Ingress], topo *topology.T) *Predictor {
	return &Predictor{table: table, topo: topo}
}

// Predict returns the LPM prediction for src.
func (p *Predictor) Predict(src netip.Addr) (flow.Ingress, bool) {
	_, in, ok := p.table.Lookup(src)
	return in, ok
}

// Classify compares the prediction for rec against the record's actual
// ingress. Unmapped sources return (MissNone, false): the paper's accuracy
// ratio counts only flows that IPD had an opinion about ("ratio of
// correctly classified flows relative to all flows in a time bin" is also
// reported; Outcome exposes both).
func (p *Predictor) Classify(rec flow.Record) (topology.MissKind, bool) {
	pred, ok := p.Predict(rec.Src)
	if !ok {
		return topology.MissNone, false
	}
	return p.topo.ClassifyMiss(pred, rec.In), true
}

// Outcome is the per-time-bin accuracy bookkeeping behind Fig. 6.
type Outcome struct {
	// Bin is the start of the 5-minute validation bin.
	Bin time.Time
	// Flows is the number of ground-truth flows seen in the bin.
	Flows int
	// Mapped is how many of them had an LPM prediction.
	Mapped int
	// Correct is how many predictions matched (bundle-folded).
	Correct int
	// Misses counts the taxonomy of wrong predictions.
	Misses map[topology.MissKind]int
}

// Accuracy is Correct/Mapped (NaN-free: 0 when nothing was mapped).
func (o Outcome) Accuracy() float64 {
	if o.Mapped == 0 {
		return 0
	}
	return float64(o.Correct) / float64(o.Mapped)
}

// Coverage is Mapped/Flows.
func (o Outcome) Coverage() float64 {
	if o.Flows == 0 {
		return 0
	}
	return float64(o.Mapped) / float64(o.Flows)
}

// Accumulate folds one classified record into the outcome.
func (o *Outcome) Accumulate(kind topology.MissKind, mapped bool) {
	o.Flows++
	if !mapped {
		return
	}
	o.Mapped++
	if kind == topology.MissNone {
		o.Correct++
		return
	}
	if o.Misses == nil {
		o.Misses = make(map[topology.MissKind]int)
	}
	o.Misses[kind]++
}

// Merge adds other's counts into o (bins are the caller's business).
func (o *Outcome) Merge(other Outcome) {
	o.Flows += other.Flows
	o.Mapped += other.Mapped
	o.Correct += other.Correct
	for k, v := range other.Misses {
		if o.Misses == nil {
			o.Misses = make(map[topology.MissKind]int)
		}
		o.Misses[k] += v
	}
}

// MissRecord is one misclassified flow with its taxonomy, for the per-AS
// Fig. 7/8 breakdowns.
type MissRecord struct {
	Ts   time.Time
	Src  netip.Addr
	Kind topology.MissKind
}

// TableBuilder abstracts "give me the current LPM table" (both Engine and
// Server satisfy it).
type TableBuilder interface {
	LookupTable() *trie.Trie[flow.Ingress]
}

// RangesByLength buckets mapped ranges by prefix length, weighted by count
// and by covered address space — the Fig. 9 / Fig. 11 aggregations.
type RangesByLength struct {
	// Count[bits] is the number of mapped ranges with that length.
	Count map[int]int
	// Space[bits] is the total covered address count (IPv4).
	Space map[int]float64
}

// AggregateRanges builds the per-length aggregation over IPv4 ranges.
func AggregateRanges(infos []core.RangeInfo) RangesByLength {
	out := RangesByLength{Count: make(map[int]int), Space: make(map[int]float64)}
	for _, ri := range infos {
		if !ri.Prefix.Addr().Is4() {
			continue
		}
		bits := ri.Prefix.Bits()
		out.Count[bits]++
		out.Space[bits] += float64(uint64(1) << uint(32-bits))
	}
	return out
}

// Lengths returns the sorted prefix lengths present.
func (r RangesByLength) Lengths() []int {
	var out []int
	for b := range r.Count {
		out = append(out, b)
	}
	sort.Ints(out)
	return out
}

// TotalCount sums the range counts.
func (r RangesByLength) TotalCount() int {
	n := 0
	for _, c := range r.Count {
		n += c
	}
	return n
}

// TotalSpace sums the covered address space.
func (r RangesByLength) TotalSpace() float64 {
	s := 0.0
	for _, c := range r.Space {
		s += c
	}
	return s
}
