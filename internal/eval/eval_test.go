package eval

import (
	"net/netip"
	"testing"
	"time"

	"ipd/internal/bgp"
	"ipd/internal/core"
	"ipd/internal/flow"
	"ipd/internal/topology"
	"ipd/internal/trie"
)

var (
	inA = flow.Ingress{Router: 1, Iface: 1}
	inB = flow.Ingress{Router: 2, Iface: 1}
	inC = flow.Ingress{Router: 3, Iface: 1}
)

var t0 = time.Unix(1_600_000_000, 0).UTC()

func mustPrefix(t testing.TB, s string) netip.Prefix {
	t.Helper()
	p, err := netip.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// evalTopo: PoP 1 (C1): routers 1, 2; PoP 2 (C2): router 3.
func evalTopo(t *testing.T) *topology.T {
	t.Helper()
	tp := topology.New()
	for _, step := range []func() error{
		func() error { return tp.AddPoP(1, 1) },
		func() error { return tp.AddPoP(2, 2) },
		func() error { return tp.AddRouter(1, 1) },
		func() error { return tp.AddRouter(2, 1) },
		func() error { return tp.AddRouter(3, 2) },
		func() error { return tp.AddInterface(inA, 64500, topology.LinkPNI) },
		func() error { return tp.AddInterface(flow.Ingress{Router: 1, Iface: 2}, 64500, topology.LinkPNI) },
		func() error { return tp.AddInterface(inB, 64501, topology.LinkTransit) },
		func() error { return tp.AddInterface(inC, 64502, topology.LinkPublicPeering) },
	} {
		if err := step(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tp.MakeBundle(inA, flow.Ingress{Router: 1, Iface: 2}); err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestPredictorClassify(t *testing.T) {
	tp := evalTopo(t)
	table := trie.New[flow.Ingress]()
	table.Insert(mustPrefix(t, "10.0.0.0/8"), inA)
	p := NewPredictor(table, tp)

	if in, ok := p.Predict(netip.MustParseAddr("10.1.2.3")); !ok || in != inA {
		t.Errorf("Predict = %v ok=%v", in, ok)
	}
	// Correct prediction.
	kind, mapped := p.Classify(flow.Record{Ts: t0, Src: netip.MustParseAddr("10.1.2.3"), In: inA})
	if !mapped || kind != topology.MissNone {
		t.Errorf("hit: kind=%v mapped=%v", kind, mapped)
	}
	// Interface miss (same router, other iface).
	kind, _ = p.Classify(flow.Record{Ts: t0, Src: netip.MustParseAddr("10.1.2.3"), In: flow.Ingress{Router: 1, Iface: 5}})
	if kind != topology.MissInterface {
		t.Errorf("interface miss: %v", kind)
	}
	// Router miss (same PoP).
	kind, _ = p.Classify(flow.Record{Ts: t0, Src: netip.MustParseAddr("10.1.2.3"), In: inB})
	if kind != topology.MissRouter {
		t.Errorf("router miss: %v", kind)
	}
	// PoP miss.
	kind, _ = p.Classify(flow.Record{Ts: t0, Src: netip.MustParseAddr("10.1.2.3"), In: inC})
	if kind != topology.MissPoP {
		t.Errorf("pop miss: %v", kind)
	}
	// Unmapped source.
	if _, mapped := p.Classify(flow.Record{Ts: t0, Src: netip.MustParseAddr("99.0.0.1"), In: inA}); mapped {
		t.Error("unmapped source should report mapped=false")
	}
}

func TestOutcomeAccounting(t *testing.T) {
	var o Outcome
	o.Accumulate(topology.MissNone, true)
	o.Accumulate(topology.MissNone, true)
	o.Accumulate(topology.MissPoP, true)
	o.Accumulate(topology.MissNone, false) // unmapped
	if o.Flows != 4 || o.Mapped != 3 || o.Correct != 2 {
		t.Errorf("outcome = %+v", o)
	}
	if got := o.Accuracy(); got != 2.0/3 {
		t.Errorf("Accuracy = %v", got)
	}
	if got := o.Coverage(); got != 0.75 {
		t.Errorf("Coverage = %v", got)
	}
	var empty Outcome
	if empty.Accuracy() != 0 || empty.Coverage() != 0 {
		t.Error("empty outcome should be 0")
	}
	var merged Outcome
	merged.Merge(o)
	merged.Merge(o)
	if merged.Flows != 8 || merged.Misses[topology.MissPoP] != 2 {
		t.Errorf("merged = %+v", merged)
	}
}

func mapped(t *testing.T, rows ...[3]string) []core.RangeInfo {
	t.Helper()
	var out []core.RangeInfo
	for _, r := range rows {
		in := inA
		switch r[1] {
		case "B":
			in = inB
		case "C":
			in = inC
		}
		samples := 100.0
		out = append(out, core.RangeInfo{
			Prefix: mustPrefix(t, r[0]), Classified: true, Ingress: in, Samples: samples,
		})
	}
	return out
}

func TestStabilityTracker(t *testing.T) {
	tr := NewStabilityTracker()
	// Prefix X stays on A for 2 steps, then moves to B; prefix Y vanishes
	// after one step.
	tr.Observe(t0, mapped(t, [3]string{"10.0.0.0/8", "A"}, [3]string{"20.0.0.0/8", "A"}))
	tr.Observe(t0.Add(time.Hour), mapped(t, [3]string{"10.0.0.0/8", "A"}))
	tr.Observe(t0.Add(2*time.Hour), mapped(t, [3]string{"10.0.0.0/8", "B"}))
	phases := tr.Finish()
	if len(phases) != 3 {
		t.Fatalf("phases = %+v", phases)
	}
	byPfx := map[string][]StablePhase{}
	for _, p := range phases {
		byPfx[p.Prefix.String()] = append(byPfx[p.Prefix.String()], p)
	}
	y := byPfx["20.0.0.0/8"]
	if len(y) != 1 || y[0].Duration != time.Hour {
		t.Errorf("Y phases = %+v", y)
	}
	x := byPfx["10.0.0.0/8"]
	if len(x) != 2 {
		t.Fatalf("X phases = %+v", x)
	}
	if x[0].Duration != 2*time.Hour || x[0].Ingress != inA {
		t.Errorf("X first phase = %+v", x[0])
	}
	// The second X phase is still open at Finish and closes with 0 length.
	if x[1].Ingress != inB || x[1].Duration != 0 {
		t.Errorf("X second phase = %+v", x[1])
	}
	ds := Durations(phases)
	if len(ds) != 3 {
		t.Errorf("Durations = %v", ds)
	}
}

func TestStabilityTrackerMaxSamples(t *testing.T) {
	tr := NewStabilityTracker()
	ri := core.RangeInfo{Prefix: mustPrefix(t, "10.0.0.0/8"), Classified: true, Ingress: inA, Samples: 10}
	tr.Observe(t0, []core.RangeInfo{ri})
	ri.Samples = 500
	tr.Observe(t0.Add(time.Hour), []core.RangeInfo{ri})
	ri.Samples = 50 // decayed
	tr.Observe(t0.Add(2*time.Hour), []core.RangeInfo{ri})
	phases := tr.Finish()
	if len(phases) != 1 || phases[0].MaxSamples != 500 {
		t.Errorf("phases = %+v", phases)
	}
}

func TestMatchStable(t *testing.T) {
	t1 := mapped(t,
		[3]string{"10.0.0.0/8", "A"},
		[3]string{"20.0.0.0/8", "B"},
		[3]string{"30.0.0.0/8", "C"},
	)
	// t2: 10/8 unchanged; 20/8 now on A (unstable); 30/8 gone.
	t2 := mapped(t,
		[3]string{"10.0.0.0/8", "A"},
		[3]string{"20.0.0.0/8", "A"},
	)
	res := MatchStable(t1, t2)
	if res.Matching < 0.66 || res.Matching > 0.67 {
		t.Errorf("Matching = %v, want 2/3", res.Matching)
	}
	if res.Stable < 0.33 || res.Stable > 0.34 {
		t.Errorf("Stable = %v, want 1/3", res.Stable)
	}
	// Re-partitioning: t2 splits 10/8 into halves with different ingress.
	t2b := mapped(t,
		[3]string{"10.0.0.0/9", "A"},
		[3]string{"10.128.0.0/9", "B"},
	)
	res = MatchStable(mapped(t, [3]string{"10.0.0.0/8", "A"}), t2b)
	if res.Matching != 1 {
		t.Errorf("repartition Matching = %v", res.Matching)
	}
	if res.Stable != 0.5 {
		t.Errorf("repartition Stable = %v", res.Stable)
	}
	// Empty input.
	if res := MatchStable(nil, t2); res.Matching != 0 || res.Stable != 0 {
		t.Errorf("empty = %+v", res)
	}
}

func TestSpecificity(t *testing.T) {
	tb := bgp.NewTable(t0)
	for _, p := range []string{"10.0.0.0/8", "20.0.0.0/16", "20.1.0.0/16"} {
		if err := tb.Insert(bgp.Route{Prefix: mustPrefix(t, p), Origin: 64500, NextHops: []flow.RouterID{1}, Best: 1}); err != nil {
			t.Fatal(err)
		}
	}
	ranges := mapped(t,
		[3]string{"10.0.0.0/8", "A"},  // exact
		[3]string{"10.1.0.0/16", "A"}, // more specific
		[3]string{"20.0.0.0/12", "A"}, // less specific (contains the two /16s)
		[3]string{"99.0.0.0/8", "A"},  // unrelated
	)
	res := Specificity(ranges, tb)
	if res.Exact != 1 || res.MoreSpecific != 1 || res.LessSpecific != 1 || res.Unrelated != 1 {
		t.Errorf("specificity = %+v", res)
	}
	if res.Total() != 4 {
		t.Errorf("Total = %d", res.Total())
	}
}

func TestSymmetry(t *testing.T) {
	tb := bgp.NewTable(t0)
	// Egress for 10/8 is router 1 (same as ingress A); for 20/8 router 9.
	if err := tb.Insert(bgp.Route{Prefix: mustPrefix(t, "10.0.0.0/8"), Origin: 64500, NextHops: []flow.RouterID{1}, Best: 1}); err != nil {
		t.Fatal(err)
	}
	if err := tb.Insert(bgp.Route{Prefix: mustPrefix(t, "20.0.0.0/8"), Origin: 64501, NextHops: []flow.RouterID{9}, Best: 9}); err != nil {
		t.Fatal(err)
	}
	ranges := mapped(t, [3]string{"10.1.0.0/16", "A"}, [3]string{"20.1.0.0/16", "B"})
	groups := Symmetry(ranges, tb, func(p netip.Prefix) []string {
		out := []string{"ALL"}
		if p.Addr().As4()[0] == 10 {
			out = append(out, "TOP5")
		}
		return out
	})
	if got := groups["ALL"]; got.Ranges != 2 || got.Ratio() != 0.5 {
		t.Errorf("ALL = %+v", got)
	}
	if got := groups["TOP5"]; got.Ranges != 1 || got.Ratio() != 1 {
		t.Errorf("TOP5 = %+v", got)
	}
	var empty SymmetryResult
	if empty.Ratio() != 0 {
		t.Error("empty ratio")
	}
	// Skipped groups and unrouted ranges.
	groups = Symmetry(mapped(t, [3]string{"99.0.0.0/8", "A"}), tb, func(netip.Prefix) []string { return nil })
	if len(groups) != 0 {
		t.Errorf("skip-all = %v", groups)
	}
}

func TestDetectViolations(t *testing.T) {
	tp := evalTopo(t)
	owner := func(p netip.Prefix) (topology.ASN, bool) {
		switch p.Addr().As4()[0] {
		case 10:
			return 64502, true // tier-1 peer attached at inC
		case 20:
			return 64500, true // non-tier-1
		}
		return 0, false
	}
	isT1 := func(a topology.ASN) bool { return a == 64502 }
	ranges := mapped(t,
		[3]string{"10.0.0.0/16", "C"}, // enters via its own peering link: fine
		[3]string{"10.1.0.0/16", "B"}, // enters via AS 64501's transit link: violation
		[3]string{"20.0.0.0/16", "B"}, // not tier-1: ignored
		[3]string{"99.0.0.0/8", "A"},  // unowned: ignored
	)
	vs := DetectViolations(ranges, tp, owner, isT1)
	if len(vs) != 1 {
		t.Fatalf("violations = %+v", vs)
	}
	v := vs[0]
	if v.Peer != 64502 || v.Ingress != inB || v.ViaAS != 64501 || v.ViaClass != topology.LinkTransit {
		t.Errorf("violation = %+v", v)
	}
}

func TestIngressSpread(t *testing.T) {
	tp := evalTopo(t)
	s := NewIngressSpread(tp)
	add := func(src string, in flow.Ingress, n int) {
		for i := 0; i < n; i++ {
			s.Add(flow.Record{Ts: t0, Src: netip.MustParseAddr(src), In: in})
		}
	}
	add("10.0.0.1", inA, 80)
	add("10.0.0.2", flow.Ingress{Router: 1, Iface: 2}, 10) // bundle sibling of inA -> folded
	add("10.0.0.3", inB, 10)
	add("20.0.0.1", inC, 5)
	s.Add(flow.Record{Ts: t0, Src: netip.MustParseAddr("2001:db8::1"), In: inA}) // ignored
	res := s.Results()
	if len(res) != 2 {
		t.Fatalf("results = %+v", res)
	}
	var ten PerPrefix
	for _, r := range res {
		if r.Prefix == mustPrefix(t, "10.0.0.0/24") {
			ten = r
		}
	}
	if ten.Ingresses != 2 {
		t.Errorf("ingress count = %d, want 2 (bundle folded)", ten.Ingresses)
	}
	if ten.TopShare != 0.9 || ten.Flows != 100 {
		t.Errorf("ten = %+v", ten)
	}
}

func TestAggregateRanges(t *testing.T) {
	infos := mapped(t,
		[3]string{"10.0.0.0/8", "A"},
		[3]string{"20.0.0.0/8", "A"},
		[3]string{"30.0.0.0/24", "A"},
	)
	infos = append(infos, core.RangeInfo{Prefix: mustPrefix(t, "2001:db8::/32"), Classified: true})
	agg := AggregateRanges(infos)
	if agg.Count[8] != 2 || agg.Count[24] != 1 {
		t.Errorf("Count = %v", agg.Count)
	}
	if agg.Space[8] != 2*(1<<24) || agg.Space[24] != 256 {
		t.Errorf("Space = %v", agg.Space)
	}
	if got := agg.Lengths(); len(got) != 2 || got[0] != 8 || got[1] != 24 {
		t.Errorf("Lengths = %v", got)
	}
	if agg.TotalCount() != 3 {
		t.Errorf("TotalCount = %d", agg.TotalCount())
	}
	if agg.TotalSpace() != 2*(1<<24)+256 {
		t.Errorf("TotalSpace = %v", agg.TotalSpace())
	}
}
