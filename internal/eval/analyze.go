package eval

import (
	"net/netip"
	"time"

	"ipd/internal/bgp"
	"ipd/internal/core"
	"ipd/internal/flow"
	"ipd/internal/netaddr"
	"ipd/internal/topology"
	"ipd/internal/trie"
)

// StabilityTracker measures how long each prefix stays mapped to the same
// ingress across consecutive snapshots — the quantity behind Fig. 2 ("60%
// of prefixes remain stable for < 1 hour") and Fig. 15 (elephant ranges).
// Feed snapshots in time order; completed stable phases accumulate in
// Phases.
type StabilityTracker struct {
	open   map[netaddr.Key]*stablePhase
	phases []StablePhase
	last   time.Time
}

type stablePhase struct {
	ingress flow.Ingress
	since   time.Time
	samples float64
}

// StablePhase is one completed period during which a prefix was continuously
// mapped to one ingress.
type StablePhase struct {
	Prefix   netip.Prefix
	Ingress  flow.Ingress
	Duration time.Duration
	// MaxSamples is the range's peak sample counter during the phase (the
	// §5.4 elephant criterion).
	MaxSamples float64
}

// NewStabilityTracker returns an empty tracker.
func NewStabilityTracker() *StabilityTracker {
	return &StabilityTracker{open: make(map[netaddr.Key]*stablePhase)}
}

// Observe folds in the mapped ranges at time ts. A prefix that disappears or
// changes ingress closes its phase.
func (t *StabilityTracker) Observe(ts time.Time, mapped []core.RangeInfo) {
	seen := make(map[netaddr.Key]bool, len(mapped))
	for _, ri := range mapped {
		k := netaddr.KeyOf(ri.Prefix)
		seen[k] = true
		ph := t.open[k]
		switch {
		case ph == nil:
			t.open[k] = &stablePhase{ingress: ri.Ingress, since: ts, samples: ri.Samples}
		case ph.ingress != ri.Ingress:
			t.close(k, ts)
			t.open[k] = &stablePhase{ingress: ri.Ingress, since: ts, samples: ri.Samples}
		default:
			if ri.Samples > ph.samples {
				ph.samples = ri.Samples
			}
		}
	}
	for k := range t.open {
		if !seen[k] {
			t.close(k, ts)
		}
	}
	t.last = ts
}

func (t *StabilityTracker) close(k netaddr.Key, ts time.Time) {
	ph := t.open[k]
	delete(t.open, k)
	t.phases = append(t.phases, StablePhase{
		Prefix:     k.Prefix(),
		Ingress:    ph.ingress,
		Duration:   ts.Sub(ph.since),
		MaxSamples: ph.samples,
	})
}

// Finish closes all open phases at the last observed time and returns every
// completed phase.
func (t *StabilityTracker) Finish() []StablePhase {
	for k := range t.open {
		t.close(k, t.last)
	}
	return t.phases
}

// PerPrefixMeanDurations returns, per distinct prefix, the mean duration of
// its stable phases in hours — the per-prefix view of Fig. 2 ("stability
// duration per prefix on a link").
func PerPrefixMeanDurations(phases []StablePhase) []float64 {
	sums := make(map[netaddr.Key]float64)
	counts := make(map[netaddr.Key]int)
	for _, p := range phases {
		k := netaddr.KeyOf(p.Prefix)
		sums[k] += p.Duration.Hours()
		counts[k]++
	}
	out := make([]float64, 0, len(sums))
	for k, s := range sums {
		out = append(out, s/float64(counts[k]))
	}
	return out
}

// Durations extracts the phase durations in hours (the Fig. 2 CDF input).
func Durations(phases []StablePhase) []float64 {
	out := make([]float64, len(phases))
	for i, p := range phases {
		out[i] = p.Duration.Hours()
	}
	return out
}

// MatchStableResult compares the mapped address space at two instants
// (§5.3.1): Matching is the fraction of t1's mapped space still mapped at
// t2; Stable the fraction mapped at t2 via the same ingress.
type MatchStableResult struct {
	Matching float64
	Stable   float64
}

// MatchStable implements the §5.3.1 methodology: build an LPM trie from the
// t2 prefixes and look up the addresses of each t1 prefix. Each t1 range is
// probed at up to 16 evenly spaced sub-addresses and weighted by its
// address count, which handles arbitrary re-partitioning between t1 and t2.
func MatchStable(t1, t2 []core.RangeInfo) MatchStableResult {
	lpm := trie.New[flow.Ingress]()
	for _, ri := range t2 {
		lpm.Insert(ri.Prefix, ri.Ingress)
	}
	var total, matching, stable float64
	for _, ri := range t1 {
		if !ri.Prefix.Addr().Is4() {
			continue
		}
		weight := float64(uint64(1) << uint(32-ri.Prefix.Bits()))
		probes := probeAddrs(ri.Prefix, 16)
		per := weight / float64(len(probes))
		for _, a := range probes {
			total += per
			if _, in, ok := lpm.Lookup(a); ok {
				matching += per
				if in == ri.Ingress {
					stable += per
				}
			}
		}
	}
	if total == 0 {
		return MatchStableResult{}
	}
	return MatchStableResult{Matching: matching / total, Stable: stable / total}
}

// probeAddrs returns up to n evenly spaced addresses inside the IPv4
// prefix p.
func probeAddrs(p netip.Prefix, n int) []netip.Addr {
	span := uint64(1) << uint(32-p.Bits())
	if uint64(n) > span {
		n = int(span)
	}
	out := make([]netip.Addr, 0, n)
	step := span / uint64(n)
	for i := 0; i < n; i++ {
		out = append(out, netaddr.NthAddr(p, uint64(i)*step))
	}
	return out
}

// SpecificityResult counts the §5.5 prefix-alignment cases between mapped
// IPD ranges and BGP prefixes.
type SpecificityResult struct {
	// Exact: the IPD range equals a BGP prefix.
	Exact int
	// MoreSpecific: the IPD range lies strictly inside a BGP prefix.
	MoreSpecific int
	// LessSpecific: the IPD range strictly contains at least one BGP
	// prefix (neighboring BGP prefixes joined into one IPD range).
	LessSpecific int
	// Unrelated: no BGP prefix covers or is covered.
	Unrelated int
}

// Total returns the number of classified ranges considered.
func (r SpecificityResult) Total() int {
	return r.Exact + r.MoreSpecific + r.LessSpecific + r.Unrelated
}

// Specificity categorizes each mapped IPv4 range against the BGP table.
func Specificity(mapped []core.RangeInfo, tb *bgp.Table) SpecificityResult {
	// Index BGP prefixes in a trie of their own for containment checks.
	var res SpecificityResult
	for _, ri := range mapped {
		if !ri.Prefix.Addr().Is4() {
			continue
		}
		if route, ok := tb.LookupPrefix(ri.Prefix); ok {
			if route.Prefix.Bits() == ri.Prefix.Bits() {
				res.Exact++
			} else {
				res.MoreSpecific++
			}
			continue
		}
		// No covering BGP prefix: does the range contain one?
		contains := false
		tb.Walk(func(r bgp.Route) bool {
			if ri.Prefix.Contains(r.Prefix.Addr()) && ri.Prefix.Bits() < r.Prefix.Bits() {
				contains = true
				return false
			}
			return true
		})
		if contains {
			res.LessSpecific++
		} else {
			res.Unrelated++
		}
	}
	return res
}

// SymmetryResult is one group's ingress/egress agreement, weighted by the
// address space each range covers (§5.5 compares prefixes, not the many
// small secondary IPD ranges a prefix may shed).
type SymmetryResult struct {
	// Symmetric / Total are address-space weights; Ranges counts the
	// ranges considered.
	Symmetric float64
	Total     float64
	Ranges    int
}

// Ratio returns Symmetric/Total (0 for empty groups).
func (r SymmetryResult) Ratio() float64 {
	if r.Total == 0 {
		return 0
	}
	return r.Symmetric / r.Total
}

// Symmetry compares each mapped range's ingress router with the BGP egress
// router toward that range and aggregates by the group label assigned by
// groupOf (return "" to skip a range). This is the Fig. 16 measurement:
// "assess if ingress and egress routers coincide".
func Symmetry(mapped []core.RangeInfo, tb *bgp.Table, groupOf func(netip.Prefix) []string) map[string]*SymmetryResult {
	out := make(map[string]*SymmetryResult)
	for _, ri := range mapped {
		if !ri.Prefix.Addr().Is4() {
			continue
		}
		groups := groupOf(ri.Prefix)
		if len(groups) == 0 {
			continue
		}
		egress, ok := tb.EgressRouter(ri.Prefix.Addr())
		if !ok {
			continue
		}
		sym := egress == ri.Ingress.Router
		weight := float64(uint64(1) << uint(32-ri.Prefix.Bits()))
		for _, g := range groups {
			r := out[g]
			if r == nil {
				r = &SymmetryResult{}
				out[g] = r
			}
			r.Ranges++
			r.Total += weight
			if sym {
				r.Symmetric += weight
			}
		}
	}
	return out
}

// Violation is a §5.6 finding: a prefix of a settlement-free peer whose
// traffic enters through a link not attached to that peer.
type Violation struct {
	Prefix  netip.Prefix
	Peer    topology.ASN
	Ingress flow.Ingress
	// ViaAS is the neighbor actually attached to the ingress link (0 if
	// unknown).
	ViaAS topology.ASN
	// ViaClass is the ingress link's class.
	ViaClass topology.LinkClass
}

// DetectViolations scans mapped ranges belonging to tier-1 peers (ownership
// resolved via ownerOf) and flags those whose ingress interface is not
// attached to the owning peer. This mirrors §5.6: "traffic from a tier-1 AS
// entering our network through non-peering links may indicate possible
// peering agreement violations".
func DetectViolations(mapped []core.RangeInfo, topo *topology.T,
	ownerOf func(netip.Prefix) (topology.ASN, bool), isTier1 func(topology.ASN) bool) []Violation {
	var out []Violation
	for _, ri := range mapped {
		owner, ok := ownerOf(ri.Prefix)
		if !ok || !isTier1(owner) {
			continue
		}
		itf, ok := topo.Interface(ri.Ingress)
		if ok && itf.Neighbor == owner {
			continue // entered via its own link: fine
		}
		v := Violation{Prefix: ri.Prefix, Peer: owner, Ingress: ri.Ingress}
		if ok {
			v.ViaAS = itf.Neighbor
			v.ViaClass = itf.Class
		}
		out = append(out, v)
	}
	return out
}

// IngressSpread aggregates raw flow records per /24 source prefix: the set
// of distinct logical ingress points and the traffic share of the top one —
// the Fig. 3 (solid curves) and Fig. 4 inputs.
type IngressSpread struct {
	counts map[netaddr.Key]map[flow.Ingress]float64
	topo   *topology.T
}

// NewIngressSpread returns an empty aggregator; topo folds bundles (nil
// disables folding).
func NewIngressSpread(topo *topology.T) *IngressSpread {
	return &IngressSpread{counts: make(map[netaddr.Key]map[flow.Ingress]float64), topo: topo}
}

// Add folds one record (IPv4 only; IPv6 records are ignored).
func (s *IngressSpread) Add(rec flow.Record) {
	src := rec.Src.Unmap()
	if !src.Is4() {
		return
	}
	p, _ := netaddr.Mask(src, 24)
	k := netaddr.KeyOf(p)
	in := rec.In
	if s.topo != nil {
		in = s.topo.Logical(in)
	}
	m := s.counts[k]
	if m == nil {
		m = make(map[flow.Ingress]float64)
		s.counts[k] = m
	}
	m[in]++
}

// PerPrefix is the aggregate for one /24.
type PerPrefix struct {
	Prefix netip.Prefix
	// Ingresses is the number of distinct ingress points observed.
	Ingresses int
	// TopShare is the traffic share of the highest-volume ingress.
	TopShare float64
	// Flows is the total flow count.
	Flows float64
}

// Results returns per-/24 aggregates (unordered).
func (s *IngressSpread) Results() []PerPrefix {
	out := make([]PerPrefix, 0, len(s.counts))
	for k, m := range s.counts {
		var total, top float64
		for _, c := range m {
			total += c
			if c > top {
				top = c
			}
		}
		out = append(out, PerPrefix{
			Prefix:    k.Prefix(),
			Ingresses: len(m),
			TopShare:  top / total,
			Flows:     total,
		})
	}
	return out
}
