package sketch

import (
	"bytes"
	"net/netip"
	"testing"
	"time"

	"ipd/internal/flow"
	"ipd/internal/persist"
)

const fuzzMagic, fuzzVersion = 0x534b4348, 1 // "SKCH"

// seedPayload builds a valid encoded sketch+ring payload for the corpus.
func seedPayload(width, depth, gens int, observes int) []byte {
	s, err := New(Config{Width: width, Depth: depth, Generations: gens, Seed: 99})
	if err != nil {
		panic(err)
	}
	ts := time.Date(2024, 8, 4, 12, 0, 0, 0, time.UTC)
	a := netip.MustParseAddr("10.0.0.0").As4()
	for i := 0; i < observes; i++ {
		a[3] = byte(i)
		s.Observe(netip.PrefixFrom(netip.AddrFrom4(a), 28), float64(i%3+1), ts)
		if i%7 == 6 {
			ts = ts.Add(time.Minute)
			s.Rotate(ts)
		}
	}
	r := NewVoteRing(gens)
	for i := 0; i < observes; i++ {
		r.Observe(flow.Ingress{Router: flow.RouterID(i%4 + 1), Iface: 1}, 1)
		if i%5 == 4 {
			r.Rotate()
		}
	}
	enc := persist.NewEncoder(fuzzMagic, fuzzVersion)
	s.EncodeState(enc)
	r.EncodeState(enc)
	return enc.Finish()
}

// FuzzSketchCheckpointRoundTrip drives arbitrary bytes through the persist
// sketch section decoder: anything that decodes cleanly must re-encode
// byte-identically (the kill-and-restore determinism contract), and nothing
// may panic or over-allocate regardless of input.
func FuzzSketchCheckpointRoundTrip(f *testing.F) {
	f.Add(seedPayload(16, 1, 2, 0))
	f.Add(seedPayload(16, 2, 3, 10))
	f.Add(seedPayload(64, 4, 3, 40))
	f.Add(seedPayload(32, 3, 4, 25))
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := persist.NewDecoder(data, fuzzMagic, fuzzVersion)
		if err != nil {
			return // torn header/CRC: rejected before any field decodes
		}
		s, err := DecodeState(dec)
		if err != nil {
			return
		}
		r, err := DecodeVoteRing(dec)
		if err != nil {
			return
		}
		if err := dec.Finish(); err != nil {
			return
		}
		enc := persist.NewEncoder(fuzzMagic, fuzzVersion)
		s.EncodeState(enc)
		r.EncodeState(enc)
		out := enc.Finish()
		if !bytes.Equal(out, data) {
			t.Fatalf("sketch section round-trip drifted: %d bytes in, %d out", len(data), len(out))
		}
		// The decoded sketch must be usable, not just encodable.
		p := netip.MustParsePrefix("10.0.0.0/28")
		if est := s.Estimate(p); est < 0 {
			t.Fatalf("negative estimate %v from decoded sketch", est)
		}
		s.Rotate(time.Date(2024, 8, 4, 13, 0, 0, 0, time.UTC))
		r.Rotate()
	})
}
