// Package sketch is the fixed-memory degradation tier behind the engine's
// per-IP state: a seeded, deterministic count-min sketch plus Bloom filter,
// organised as a ring of time generations so per-source evidence ages out
// the way exact per-IP expiry would, and a per-range vote ring that keeps
// per-ingress tallies at a few dozen bytes per range.
//
// The exact engine holds one ipState per masked source address inside every
// unclassified range — memory linear in distinct sources, which a spoofed
// scan drives without bound. Under governor pressure the engine switches
// far-from-threshold ranges to this sketch: the shared count-min answers
// per-source weight estimates within εN with probability 1−δ (ε = e/width,
// δ = e^−depth, Cormode & Muthukrishnan), the Bloom side answers coarse
// membership and first-seen, and the per-range VoteRing keeps the exact
// per-ingress vote mass of the last G generations so expiry becomes a
// subtraction of the oldest generation instead of a per-source walk.
//
// Everything is deterministic: hashing is seeded splitmix64, generations
// rotate on the engine's virtual cycle clock, and the state encodes through
// internal/persist in sorted order, so kill-and-restore runs stay
// byte-identical.
package sketch

import (
	"encoding/binary"
	"fmt"
	"math"
	"net/netip"
	"sort"
	"time"

	"ipd/internal/flow"
	"ipd/internal/persist"
)

// Config sizes the shared sketch. The zero value is not valid; use
// WithDefaults.
type Config struct {
	// Width is the number of counters per count-min row; the estimate
	// error bound is ε = e/Width of the total inserted mass.
	Width int
	// Depth is the number of count-min rows (and Bloom hash functions);
	// the error probability bound is δ = e^−Depth.
	Depth int
	// Generations is the ring length: how many engine cycles of evidence
	// the sketch retains. The engine sizes it as ceil(E/T)+1 so the sketch
	// window matches the exact per-IP expiry horizon.
	Generations int
	// Seed keys the hash family; runs with equal seeds are bit-identical.
	Seed uint64
}

// Default sketch sizing: ~1σ under the deployment traffic of the paper's
// Appendix A, the error bound lands at ε ≈ 0.27% of window mass with
// δ ≈ 1.8%.
const (
	DefaultWidth = 1024
	DefaultDepth = 4
	DefaultSeed  = 0x1bd5_49d5_a2f1_90cd
)

// WithDefaults fills unset fields with the package defaults.
func (c Config) WithDefaults() Config {
	if c.Width == 0 {
		c.Width = DefaultWidth
	}
	if c.Depth == 0 {
		c.Depth = DefaultDepth
	}
	if c.Generations == 0 {
		c.Generations = 3
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	return c
}

// Validate rejects configurations the codec or the error bounds cannot
// honour.
func (c Config) Validate() error {
	if c.Width < 16 || c.Width > 1<<20 {
		return fmt.Errorf("sketch: width %d out of range [16, 2^20]", c.Width)
	}
	if c.Depth < 1 || c.Depth > 16 {
		return fmt.Errorf("sketch: depth %d out of range [1, 16]", c.Depth)
	}
	if c.Generations < 2 || c.Generations > 64 {
		return fmt.Errorf("sketch: generations %d out of range [2, 64]", c.Generations)
	}
	return nil
}

// Epsilon is the count-min additive error bound as a fraction of the
// total mass inserted into one generation window: estimates are within
// ε·N with probability at least 1−δ.
func (c Config) Epsilon() float64 { return math.E / float64(c.Width) }

// Delta is the probability the Epsilon bound is exceeded for one query.
func (c Config) Delta() float64 { return math.Exp(-float64(c.Depth)) }

// bloomBits is the Bloom bitset size per generation: 8 bits per count-min
// column keeps the false-positive rate comparable to δ at the occupancies
// the width is sized for, and rounds to whole uint64 words.
func (c Config) bloomBits() uint64 { return uint64(c.Width) * 8 }

// generation is one cycle-aligned slice of the sketch window.
type generation struct {
	start time.Time
	rows  []float64 // Depth×Width count-min counters, row-major
	bloom []uint64  // membership bitset
}

func (c Config) newGeneration(start time.Time) *generation {
	return &generation{
		start: start,
		rows:  make([]float64, c.Depth*c.Width),
		bloom: make([]uint64, (c.bloomBits()+63)/64),
	}
}

// Sketch is the engine-level shared structure. One instance serves every
// sketched range (ranges partition the address space, so per-source keys
// never collide across ranges) and doubles as the first-seen preserver for
// sources refused by the MaxIPStates cap. Not safe for concurrent use; the
// engine is single-writer.
type Sketch struct {
	cfg  Config
	gens []*generation // oldest first; newest receives observes

	observes uint64 // lifetime Observe calls
}

// New returns an empty sketch. cfg is validated with defaults applied.
func New(cfg Config) (*Sketch, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Sketch{cfg: cfg}, nil
}

// Config returns the (defaulted) configuration the sketch runs with.
func (s *Sketch) Config() Config { return s.cfg }

// Observes returns the lifetime number of observations folded in.
func (s *Sketch) Observes() uint64 { return s.observes }

// Generations returns the number of live generations in the ring.
func (s *Sketch) Generations() int { return len(s.gens) }

// Bytes approximates the sketch's heap footprint: the fixed-size arrays
// dominate, which is the point — it does not grow with distinct sources.
func (s *Sketch) Bytes() int {
	per := s.cfg.Depth*s.cfg.Width*8 + int((s.cfg.bloomBits()+63)/64)*8
	return len(s.gens) * per
}

// hashes derives the double-hashing pair for a masked source prefix. h2 is
// forced odd so the probe sequence covers every index for power-of-two
// widths too.
func (s *Sketch) hashes(p netip.Prefix) (uint64, uint64) {
	b := p.Addr().As16()
	hi := binary.BigEndian.Uint64(b[0:8])
	lo := binary.BigEndian.Uint64(b[8:16])
	h1 := splitmix(s.cfg.Seed ^ hi ^ rot(lo, 31) ^ uint64(p.Bits()))
	h2 := splitmix(h1^0x9e3779b97f4a7c15) | 1
	return h1, h2
}

func rot(v uint64, k uint) uint64 { return v<<k | v>>(64-k) }

// splitmix is the splitmix64 finaliser: cheap, well-distributed, seedable.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// newest returns the generation receiving observes, creating the first one
// lazily so a sketch that never sees traffic stays empty.
func (s *Sketch) newest(ts time.Time) *generation {
	if len(s.gens) == 0 {
		s.gens = append(s.gens, s.cfg.newGeneration(ts))
	}
	return s.gens[len(s.gens)-1]
}

// Observe folds one observation of the masked source prefix p, weight w,
// into the newest generation: count-min counters and Bloom membership.
func (s *Sketch) Observe(p netip.Prefix, w float64, ts time.Time) {
	g := s.newest(ts)
	h1, h2 := s.hashes(p)
	for i := 0; i < s.cfg.Depth; i++ {
		idx := (h1 + uint64(i)*h2) % uint64(s.cfg.Width)
		g.rows[i*s.cfg.Width+int(idx)] += w
	}
	bits := s.cfg.bloomBits()
	for i := 0; i < s.cfg.Depth; i++ {
		bit := (h1 + uint64(i+s.cfg.Depth)*h2) % bits
		g.bloom[bit/64] |= 1 << (bit % 64)
	}
	s.observes++
}

// contains reports whether one generation's Bloom filter holds p.
func (s *Sketch) contains(g *generation, h1, h2 uint64) bool {
	bits := s.cfg.bloomBits()
	for i := 0; i < s.cfg.Depth; i++ {
		bit := (h1 + uint64(i+s.cfg.Depth)*h2) % bits
		if g.bloom[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// Contains reports whether p was (probably) observed inside the retained
// window. False positives occur at the Bloom rate; never false negatives.
func (s *Sketch) Contains(p netip.Prefix) bool {
	h1, h2 := s.hashes(p)
	for _, g := range s.gens {
		if s.contains(g, h1, h2) {
			return true
		}
	}
	return false
}

// FirstSeen returns the start time of the oldest retained generation whose
// Bloom filter holds p — a coarse, never-later-than-actual first-seen
// timestamp bounded by the window. The second result is false when p is in
// no generation.
func (s *Sketch) FirstSeen(p netip.Prefix) (time.Time, bool) {
	h1, h2 := s.hashes(p)
	for _, g := range s.gens {
		if s.contains(g, h1, h2) {
			return g.start, true
		}
	}
	return time.Time{}, false
}

// Estimate returns the count-min estimate of p's total observed weight
// across the retained window: an overestimate by at most ε·N with
// probability 1−δ per generation, where N is that generation's mass.
func (s *Sketch) Estimate(p netip.Prefix) float64 {
	h1, h2 := s.hashes(p)
	var sum float64
	for _, g := range s.gens {
		est := math.Inf(1)
		for i := 0; i < s.cfg.Depth; i++ {
			idx := (h1 + uint64(i)*h2) % uint64(s.cfg.Width)
			if v := g.rows[i*s.cfg.Width+int(idx)]; v < est {
				est = v
			}
		}
		if !math.IsInf(est, 1) {
			sum += est
		}
	}
	return sum
}

// Rotate starts a new generation at ts and drops generations beyond the
// configured ring length. The engine calls it once per stage-2 cycle, so a
// generation is one cycle of evidence and the window spans
// Generations·T ≥ E.
func (s *Sketch) Rotate(ts time.Time) {
	s.gens = append(s.gens, s.cfg.newGeneration(ts))
	for len(s.gens) > s.cfg.Generations {
		s.gens = s.gens[1:]
	}
}

// Reset drops all generations (used when the engine restores a checkpoint
// without a sketch section).
func (s *Sketch) Reset() { s.gens = nil }

// sectionMagicV1 guards the persisted sketch section; the section is
// self-describing (config included) so the fuzz round-trip target can
// exercise it standalone.
const sectionVersion = 1

// EncodeState appends the sketch section to enc: config, then every
// generation in ring order. Deterministic by construction — the arrays are
// fixed-order and there are no maps.
func (s *Sketch) EncodeState(enc *persist.Encoder) {
	enc.Uvarint(sectionVersion)
	enc.Uvarint(uint64(s.cfg.Width))
	enc.Uvarint(uint64(s.cfg.Depth))
	enc.Uvarint(uint64(s.cfg.Generations))
	enc.Uvarint(s.cfg.Seed)
	enc.Uvarint(s.observes)
	enc.Uvarint(uint64(len(s.gens)))
	for _, g := range s.gens {
		enc.Time(g.start)
		for _, v := range g.rows {
			enc.Float64(v)
		}
		for _, w := range g.bloom {
			enc.Uvarint(w)
		}
	}
}

// DecodeState reads a sketch section written by EncodeState and returns
// the reconstructed sketch. Every length is validated against the decoded
// config before allocation.
func DecodeState(dec *persist.Decoder) (*Sketch, error) {
	ver, err := dec.Uvarint()
	if err != nil {
		return nil, fmt.Errorf("sketch: section version: %w", err)
	}
	if ver != sectionVersion {
		return nil, fmt.Errorf("sketch: unsupported section version %d", ver)
	}
	var cfg Config
	if cfg.Width, err = decodeInt(dec); err != nil {
		return nil, fmt.Errorf("sketch: width: %w", err)
	}
	if cfg.Depth, err = decodeInt(dec); err != nil {
		return nil, fmt.Errorf("sketch: depth: %w", err)
	}
	if cfg.Generations, err = decodeInt(dec); err != nil {
		return nil, fmt.Errorf("sketch: generations: %w", err)
	}
	if cfg.Seed, err = dec.Uvarint(); err != nil {
		return nil, fmt.Errorf("sketch: seed: %w", err)
	}
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if s.observes, err = dec.Uvarint(); err != nil {
		return nil, fmt.Errorf("sketch: observes: %w", err)
	}
	n, err := dec.Len()
	if err != nil {
		return nil, fmt.Errorf("sketch: generation count: %w", err)
	}
	if n > s.cfg.Generations {
		return nil, fmt.Errorf("sketch: %d generations exceed ring length %d", n, s.cfg.Generations)
	}
	for i := 0; i < n; i++ {
		g := s.cfg.newGeneration(time.Time{})
		if g.start, err = dec.Time(); err != nil {
			return nil, fmt.Errorf("sketch: generation %d start: %w", i, err)
		}
		for j := range g.rows {
			if g.rows[j], err = dec.Float64(); err != nil {
				return nil, fmt.Errorf("sketch: generation %d row: %w", i, err)
			}
		}
		for j := range g.bloom {
			if g.bloom[j], err = dec.Uvarint(); err != nil {
				return nil, fmt.Errorf("sketch: generation %d bloom: %w", i, err)
			}
		}
		s.gens = append(s.gens, g)
	}
	return s, nil
}

func decodeInt(dec *persist.Decoder) (int, error) {
	v, err := dec.Uvarint()
	if err != nil {
		return 0, err
	}
	if v > 1<<24 {
		return 0, fmt.Errorf("value %d out of range", v)
	}
	return int(v), nil
}

// VoteRing is the per-range companion to the shared sketch: the exact
// per-ingress vote mass of the last G generations, a few dozen bytes per
// sketched range. Rotation returns the expired oldest generation so the
// engine can subtract it from the range counters — the sketched analogue
// of exact per-IP expiry (votes age out by contribution time instead of
// source idleness; DESIGN §13 quantifies the difference).
type VoteRing struct {
	max  int
	gens []voteGen // oldest first
}

type voteGen struct {
	totals map[flow.Ingress]float64
	total  float64
}

// NewVoteRing returns a ring holding up to max generations, with one
// empty generation open for observes.
func NewVoteRing(max int) *VoteRing {
	if max < 2 {
		max = 2
	}
	return &VoteRing{max: max, gens: []voteGen{{totals: make(map[flow.Ingress]float64)}}}
}

// Observe adds w votes for ingress in to the newest generation.
func (r *VoteRing) Observe(in flow.Ingress, w float64) {
	g := &r.gens[len(r.gens)-1]
	g.totals[in] += w
	g.total += w
}

// Rotate opens a new generation and, once the ring is full, pops the
// oldest and returns its per-ingress totals for the caller to expire.
// Returns (nil, 0) while the ring is still filling.
func (r *VoteRing) Rotate() (map[flow.Ingress]float64, float64) {
	r.gens = append(r.gens, voteGen{totals: make(map[flow.Ingress]float64)})
	if len(r.gens) <= r.max {
		return nil, 0
	}
	old := r.gens[0]
	r.gens = r.gens[1:]
	return old.totals, old.total
}

// Mass returns the total vote weight currently retained in the ring.
func (r *VoteRing) Mass() float64 {
	var t float64
	for _, g := range r.gens {
		t += g.total
	}
	return t
}

// Bytes approximates the ring's heap footprint.
func (r *VoteRing) Bytes() int {
	n := 48
	for _, g := range r.gens {
		n += 48 + len(g.totals)*24
	}
	return n
}

// EncodeState appends the ring to enc, ingress keys in sorted order.
func (r *VoteRing) EncodeState(enc *persist.Encoder) {
	enc.Uvarint(uint64(r.max))
	enc.Uvarint(uint64(len(r.gens)))
	for _, g := range r.gens {
		keys := make([]flow.Ingress, 0, len(g.totals))
		for in := range g.totals {
			keys = append(keys, in)
		}
		sort.Slice(keys, func(i, j int) bool { return lessIngress(keys[i], keys[j]) })
		enc.Uvarint(uint64(len(keys)))
		for _, in := range keys {
			enc.Uvarint(uint64(in.Router))
			enc.Uvarint(uint64(in.Iface))
			enc.Float64(g.totals[in])
		}
		enc.Float64(g.total)
	}
}

// DecodeVoteRing reads a ring written by EncodeState.
func DecodeVoteRing(dec *persist.Decoder) (*VoteRing, error) {
	max, err := decodeInt(dec)
	if err != nil {
		return nil, fmt.Errorf("sketch: ring max: %w", err)
	}
	if max < 2 || max > 64 {
		return nil, fmt.Errorf("sketch: ring max %d out of range [2, 64]", max)
	}
	n, err := dec.Len()
	if err != nil {
		return nil, fmt.Errorf("sketch: ring length: %w", err)
	}
	if n < 1 || n > max {
		return nil, fmt.Errorf("sketch: ring holds %d generations, want 1..%d", n, max)
	}
	r := &VoteRing{max: max}
	for i := 0; i < n; i++ {
		k, err := dec.Len()
		if err != nil {
			return nil, fmt.Errorf("sketch: ring generation %d: %w", i, err)
		}
		g := voteGen{totals: make(map[flow.Ingress]float64, k)}
		for j := 0; j < k; j++ {
			router, err := dec.Uvarint()
			if err != nil {
				return nil, err
			}
			iface, err := dec.Uvarint()
			if err != nil {
				return nil, err
			}
			if router > 0xffff || iface > 0xffff {
				return nil, fmt.Errorf("sketch: ring ingress id out of range (%d, %d)", router, iface)
			}
			v, err := dec.Float64()
			if err != nil {
				return nil, err
			}
			g.totals[flow.Ingress{Router: flow.RouterID(router), Iface: flow.IfaceID(iface)}] = v
		}
		if g.total, err = dec.Float64(); err != nil {
			return nil, err
		}
		r.gens = append(r.gens, g)
	}
	return r, nil
}

func lessIngress(a, b flow.Ingress) bool {
	if a.Router != b.Router {
		return a.Router < b.Router
	}
	return a.Iface < b.Iface
}
