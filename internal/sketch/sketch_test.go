package sketch

import (
	"bytes"
	"fmt"
	"net/netip"
	"testing"
	"time"

	"ipd/internal/flow"
	"ipd/internal/persist"
)

var t0 = time.Date(2024, 8, 4, 12, 0, 0, 0, time.UTC)

func testSketch(t *testing.T) *Sketch {
	t.Helper()
	s, err := New(Config{Width: 64, Depth: 4, Generations: 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func TestConfigValidate(t *testing.T) {
	cases := []Config{
		{Width: 8, Depth: 4, Generations: 3, Seed: 1},
		{Width: 64, Depth: 0, Generations: 3, Seed: 1},
		{Width: 64, Depth: 17, Generations: 3, Seed: 1},
		{Width: 64, Depth: 4, Generations: 1, Seed: 1},
		{Width: 64, Depth: 4, Generations: 65, Seed: 1},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d (%+v): Validate accepted invalid config", i, c)
		}
	}
	def := Config{}.WithDefaults()
	if err := def.Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	if def.Width != DefaultWidth || def.Depth != DefaultDepth {
		t.Errorf("defaults = %+v", def)
	}
	if e := def.Epsilon(); e <= 0 || e > 0.01 {
		t.Errorf("default epsilon %v out of expected band", e)
	}
	if d := def.Delta(); d <= 0 || d > 0.02 {
		t.Errorf("default delta %v out of expected band", d)
	}
}

// TestObserveEstimate checks the count-min contract: estimates never
// undercount, and for a lightly loaded sketch they are exact.
func TestObserveEstimate(t *testing.T) {
	s := testSketch(t)
	heavy := pfx("10.0.0.0/28")
	for i := 0; i < 10; i++ {
		s.Observe(heavy, 5, t0)
	}
	light := pfx("192.168.1.0/28")
	s.Observe(light, 2, t0)

	if est := s.Estimate(heavy); est < 50 {
		t.Errorf("heavy estimate %v undercounts true 50", est)
	}
	if est := s.Estimate(light); est < 2 {
		t.Errorf("light estimate %v undercounts true 2", est)
	}
	if s.Estimate(pfx("172.16.0.0/28")) > 52 {
		t.Error("absent key estimated above total mass")
	}
	if !s.Contains(heavy) || !s.Contains(light) {
		t.Error("observed keys not contained")
	}
	if s.Observes() != 11 {
		t.Errorf("observes = %d, want 11", s.Observes())
	}
}

// TestRotateExpiry checks the generation window: a source stops being
// contained once its generation leaves the ring, and first-seen reports
// the oldest retained generation.
func TestRotateExpiry(t *testing.T) {
	s := testSketch(t)
	old := pfx("10.0.0.0/28")
	s.Observe(old, 1, t0)

	for i := 1; i <= 2; i++ {
		s.Rotate(t0.Add(time.Duration(i) * time.Minute))
	}
	if !s.Contains(old) {
		t.Fatal("key expired while its generation is still in the ring")
	}
	fs, ok := s.FirstSeen(old)
	if !ok || !fs.Equal(t0) {
		t.Fatalf("FirstSeen = %v, %v; want %v, true", fs, ok, t0)
	}
	// Generations=3: two more rotations push the first generation out.
	s.Rotate(t0.Add(3 * time.Minute))
	if s.Contains(old) {
		t.Error("key survived beyond the generation window")
	}
	if _, ok := s.FirstSeen(old); ok {
		t.Error("FirstSeen answered for an expired key")
	}
	if got := s.Generations(); got != 3 {
		t.Errorf("ring holds %d generations, want 3", got)
	}
}

// TestBytesFlat checks the memory contract: footprint depends on the
// configuration, not on how many distinct sources were observed.
func TestBytesFlat(t *testing.T) {
	s := testSketch(t)
	s.Rotate(t0)
	s.Rotate(t0.Add(time.Minute))
	s.Rotate(t0.Add(2 * time.Minute))
	before := s.Bytes()
	a := netip.MustParseAddr("10.0.0.0").As4()
	for i := 0; i < 10000; i++ {
		a[2], a[3] = byte(i>>8), byte(i)
		s.Observe(netip.PrefixFrom(netip.AddrFrom4(a), 28), 1, t0.Add(2*time.Minute))
	}
	if after := s.Bytes(); after != before {
		t.Errorf("Bytes grew %d -> %d under 10k distinct sources", before, after)
	}
}

// TestDeterministicEncode checks that two sketches fed identically encode
// byte-identically, and that the state round-trips.
func TestDeterministicEncode(t *testing.T) {
	build := func() *Sketch {
		s, _ := New(Config{Width: 64, Depth: 3, Generations: 3, Seed: 7})
		for i := 0; i < 50; i++ {
			a := netip.MustParseAddr("10.1.0.0").As4()
			a[3] = byte(i)
			s.Observe(netip.PrefixFrom(netip.AddrFrom4(a), 28), float64(i%5+1), t0)
		}
		s.Rotate(t0.Add(time.Minute))
		s.Observe(pfx("172.16.0.0/28"), 3, t0.Add(time.Minute))
		return s
	}
	enc1 := persist.NewEncoder(0xF00D, 1)
	build().EncodeState(enc1)
	b1 := enc1.Finish()
	enc2 := persist.NewEncoder(0xF00D, 1)
	build().EncodeState(enc2)
	if !bytes.Equal(b1, enc2.Finish()) {
		t.Fatal("identical feeds encoded differently")
	}

	dec, err := persist.NewDecoder(b1, 0xF00D, 1)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeState(dec)
	if err != nil {
		t.Fatalf("DecodeState: %v", err)
	}
	if err := dec.Finish(); err != nil {
		t.Fatal(err)
	}
	enc3 := persist.NewEncoder(0xF00D, 1)
	back.EncodeState(enc3)
	if !bytes.Equal(b1, enc3.Finish()) {
		t.Error("decode→encode round-trip drifted")
	}
	if back.Observes() != 51 {
		t.Errorf("restored observes = %d, want 51", back.Observes())
	}
	if est := back.Estimate(pfx("172.16.0.0/28")); est < 3 {
		t.Errorf("restored estimate %v undercounts", est)
	}
}

func TestVoteRing(t *testing.T) {
	inA := flow.Ingress{Router: 1, Iface: 1}
	inB := flow.Ingress{Router: 2, Iface: 1}
	r := NewVoteRing(3)
	r.Observe(inA, 10)
	r.Observe(inB, 4)
	if m := r.Mass(); m != 14 {
		t.Fatalf("mass = %v, want 14", m)
	}
	// Ring filling: nothing expires for the first max-1 rotations.
	if exp, tot := r.Rotate(); exp != nil || tot != 0 {
		t.Fatalf("rotation 1 expired %v/%v, want nothing", exp, tot)
	}
	r.Observe(inA, 2)
	if exp, tot := r.Rotate(); exp != nil || tot != 0 {
		t.Fatalf("rotation 2 expired %v/%v, want nothing", exp, tot)
	}
	// Third rotation pops the oldest generation: the original 14 votes.
	exp, tot := r.Rotate()
	if tot != 14 || exp[inA] != 10 || exp[inB] != 4 {
		t.Fatalf("rotation 3 expired %v total %v, want {A:10 B:4} total 14", exp, tot)
	}
	if m := r.Mass(); m != 2 {
		t.Errorf("mass after expiry = %v, want 2", m)
	}
}

func TestVoteRingRoundTrip(t *testing.T) {
	inA := flow.Ingress{Router: 3, Iface: 2}
	r := NewVoteRing(4)
	r.Observe(inA, 7)
	r.Rotate()
	r.Observe(flow.Ingress{Router: 1, Iface: 9}, 1)

	enc := persist.NewEncoder(0xBEEF, 1)
	r.EncodeState(enc)
	b1 := enc.Finish()
	dec, err := persist.NewDecoder(b1, 0xBEEF, 1)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeVoteRing(dec)
	if err != nil {
		t.Fatalf("DecodeVoteRing: %v", err)
	}
	if err := dec.Finish(); err != nil {
		t.Fatal(err)
	}
	enc2 := persist.NewEncoder(0xBEEF, 1)
	back.EncodeState(enc2)
	if !bytes.Equal(b1, enc2.Finish()) {
		t.Error("vote ring round-trip drifted")
	}
	if back.Mass() != 8 {
		t.Errorf("restored mass = %v, want 8", back.Mass())
	}
}

// TestSeedChangesHashes guards the seeding: different seeds must place keys
// differently (else a deployment cannot re-key away from an adversary who
// learned the hash layout).
func TestSeedChangesHashes(t *testing.T) {
	s1, _ := New(Config{Width: 64, Depth: 4, Generations: 3, Seed: 1})
	s2, _ := New(Config{Width: 64, Depth: 4, Generations: 3, Seed: 2})
	same := 0
	for i := 0; i < 64; i++ {
		p := pfx(fmt.Sprintf("10.0.%d.0/28", i))
		a1, b1 := s1.hashes(p)
		a2, b2 := s2.hashes(p)
		if a1 == a2 && b1 == b2 {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/64 keys hash identically under different seeds", same)
	}
}
