// Package netflow implements the NetFlow version 5 export format and a UDP
// collector, the input path of the paper's deployment (§3.1: "we rely on
// flow-level traces (e.g., Netflow or IPFIX) from all border routers";
// §5.7: the collection server receives live feeds from ≈3,000 routers).
//
// NetFlow v5 is a fixed-layout binary format: a 24-byte header followed by
// up to 30 48-byte flow records per datagram. v5 carries IPv4 only; the
// identity of the exporting router is not in the datagram, so the collector
// maps it from the UDP source address via an exporter registry — exactly
// how production collectors attribute flows to border routers.
package netflow

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"time"

	"ipd/internal/flow"
)

const (
	// Version is the NetFlow version implemented here.
	Version = 5
	// HeaderLen and RecordLen are the fixed v5 sizes.
	HeaderLen = 24
	RecordLen = 48
	// MaxRecords is the per-datagram record limit of v5.
	MaxRecords = 30
	// MaxDatagramLen is the largest valid v5 datagram.
	MaxDatagramLen = HeaderLen + MaxRecords*RecordLen
)

// Header is the v5 packet header.
type Header struct {
	// Count is the number of records in the datagram (1..30).
	Count uint16
	// SysUptime is the exporter uptime in milliseconds.
	SysUptime uint32
	// UnixSecs/UnixNsecs are the exporter's export timestamp.
	UnixSecs  uint32
	UnixNsecs uint32
	// FlowSequence counts total flows seen by the exporter (for loss
	// accounting).
	FlowSequence uint32
	// EngineType and EngineID identify the flow-switching engine.
	EngineType uint8
	EngineID   uint8
	// SamplingInterval packs a 2-bit mode and a 14-bit packet sampling
	// interval (the 1-out-of-n of §3.1).
	SamplingInterval uint16
}

// ExportTime returns the header's export timestamp.
func (h Header) ExportTime() time.Time {
	return time.Unix(int64(h.UnixSecs), int64(h.UnixNsecs)).UTC()
}

// Record is one v5 flow record.
type Record struct {
	SrcAddr netip.Addr // IPv4
	DstAddr netip.Addr // IPv4
	NextHop netip.Addr // IPv4
	// Input and Output are SNMP interface indices; Input is the ingress
	// interface IPD cares about.
	Input  uint16
	Output uint16
	// Packets and Octets are the flow's (sampled) counters.
	Packets uint32
	Octets  uint32
	// First and Last are sysUptime values at the first/last packet.
	First uint32
	Last  uint32
	// Transport fields.
	SrcPort  uint16
	DstPort  uint16
	TCPFlags uint8
	Proto    uint8
	Tos      uint8
	// Routing metadata.
	SrcAS   uint16
	DstAS   uint16
	SrcMask uint8
	DstMask uint8
}

// Datagram is a parsed v5 export packet.
type Datagram struct {
	Header  Header
	Records []Record
}

// Encode serializes the datagram. It fails if the record count is 0,
// exceeds MaxRecords, or disagrees with Header.Count (0 auto-fills).
func (d *Datagram) Encode() ([]byte, error) {
	n := len(d.Records)
	if n == 0 || n > MaxRecords {
		return nil, fmt.Errorf("netflow: datagram must carry 1..%d records, got %d", MaxRecords, n)
	}
	h := d.Header
	if h.Count == 0 {
		h.Count = uint16(n)
	}
	if int(h.Count) != n {
		return nil, fmt.Errorf("netflow: header count %d != %d records", h.Count, n)
	}
	buf := make([]byte, HeaderLen+n*RecordLen)
	binary.BigEndian.PutUint16(buf[0:], Version)
	binary.BigEndian.PutUint16(buf[2:], h.Count)
	binary.BigEndian.PutUint32(buf[4:], h.SysUptime)
	binary.BigEndian.PutUint32(buf[8:], h.UnixSecs)
	binary.BigEndian.PutUint32(buf[12:], h.UnixNsecs)
	binary.BigEndian.PutUint32(buf[16:], h.FlowSequence)
	buf[20] = h.EngineType
	buf[21] = h.EngineID
	binary.BigEndian.PutUint16(buf[22:], h.SamplingInterval)
	for i, r := range d.Records {
		if err := encodeRecord(buf[HeaderLen+i*RecordLen:], r); err != nil {
			return nil, fmt.Errorf("netflow: record %d: %w", i, err)
		}
	}
	return buf, nil
}

func encodeRecord(b []byte, r Record) error {
	src, ok1 := addr4(r.SrcAddr)
	dst, ok2 := addr4(r.DstAddr)
	nh, ok3 := addr4(r.NextHop)
	if !ok1 || !ok2 || !ok3 {
		return fmt.Errorf("v5 requires IPv4 addresses (src %v, dst %v, nexthop %v)", r.SrcAddr, r.DstAddr, r.NextHop)
	}
	copy(b[0:4], src[:])
	copy(b[4:8], dst[:])
	copy(b[8:12], nh[:])
	binary.BigEndian.PutUint16(b[12:], r.Input)
	binary.BigEndian.PutUint16(b[14:], r.Output)
	binary.BigEndian.PutUint32(b[16:], r.Packets)
	binary.BigEndian.PutUint32(b[20:], r.Octets)
	binary.BigEndian.PutUint32(b[24:], r.First)
	binary.BigEndian.PutUint32(b[28:], r.Last)
	binary.BigEndian.PutUint16(b[32:], r.SrcPort)
	binary.BigEndian.PutUint16(b[34:], r.DstPort)
	b[36] = 0 // pad1
	b[37] = r.TCPFlags
	b[38] = r.Proto
	b[39] = r.Tos
	binary.BigEndian.PutUint16(b[40:], r.SrcAS)
	binary.BigEndian.PutUint16(b[42:], r.DstAS)
	b[44] = r.SrcMask
	b[45] = r.DstMask
	b[46], b[47] = 0, 0 // pad2
	return nil
}

// addr4 returns the 4-byte form of an IPv4 (or 4-in-6, or zero) address.
func addr4(a netip.Addr) ([4]byte, bool) {
	if !a.IsValid() {
		return [4]byte{}, true // zero address (e.g. unset next hop)
	}
	a = a.Unmap()
	if !a.Is4() {
		return [4]byte{}, false
	}
	return a.As4(), true
}

// Decode parses a v5 datagram.
func Decode(b []byte) (*Datagram, error) {
	if len(b) < HeaderLen {
		return nil, fmt.Errorf("netflow: datagram too short (%d bytes)", len(b))
	}
	if v := binary.BigEndian.Uint16(b[0:]); v != Version {
		return nil, fmt.Errorf("netflow: unsupported version %d", v)
	}
	var h Header
	h.Count = binary.BigEndian.Uint16(b[2:])
	h.SysUptime = binary.BigEndian.Uint32(b[4:])
	h.UnixSecs = binary.BigEndian.Uint32(b[8:])
	h.UnixNsecs = binary.BigEndian.Uint32(b[12:])
	h.FlowSequence = binary.BigEndian.Uint32(b[16:])
	h.EngineType = b[20]
	h.EngineID = b[21]
	h.SamplingInterval = binary.BigEndian.Uint16(b[22:])
	if h.Count == 0 || h.Count > MaxRecords {
		return nil, fmt.Errorf("netflow: invalid record count %d", h.Count)
	}
	want := HeaderLen + int(h.Count)*RecordLen
	if len(b) < want {
		return nil, fmt.Errorf("netflow: truncated datagram: %d bytes, want %d", len(b), want)
	}
	d := &Datagram{Header: h, Records: make([]Record, h.Count)}
	for i := range d.Records {
		d.Records[i] = decodeRecord(b[HeaderLen+i*RecordLen:])
	}
	return d, nil
}

func decodeRecord(b []byte) Record {
	var r Record
	r.SrcAddr = netip.AddrFrom4([4]byte(b[0:4]))
	r.DstAddr = netip.AddrFrom4([4]byte(b[4:8]))
	r.NextHop = netip.AddrFrom4([4]byte(b[8:12]))
	r.Input = binary.BigEndian.Uint16(b[12:])
	r.Output = binary.BigEndian.Uint16(b[14:])
	r.Packets = binary.BigEndian.Uint32(b[16:])
	r.Octets = binary.BigEndian.Uint32(b[20:])
	r.First = binary.BigEndian.Uint32(b[24:])
	r.Last = binary.BigEndian.Uint32(b[28:])
	r.SrcPort = binary.BigEndian.Uint16(b[32:])
	r.DstPort = binary.BigEndian.Uint16(b[34:])
	r.TCPFlags = b[37]
	r.Proto = b[38]
	r.Tos = b[39]
	r.SrcAS = binary.BigEndian.Uint16(b[40:])
	r.DstAS = binary.BigEndian.Uint16(b[42:])
	r.SrcMask = b[44]
	r.DstMask = b[45]
	return r
}

// ToFlow converts a v5 record exported by router to the engine's record
// model. The timestamp is the export time (the statistical-time stage
// handles exporter clock inaccuracy downstream, §3.1).
func ToFlow(h Header, r Record, router flow.RouterID) flow.Record {
	return flow.Record{
		Ts:      h.ExportTime(),
		Src:     r.SrcAddr,
		Dst:     r.DstAddr,
		In:      flow.Ingress{Router: router, Iface: flow.IfaceID(r.Input)},
		Bytes:   r.Octets,
		Packets: r.Packets,
	}
}

// FromFlow builds a v5 record from the engine's record model (for the test
// exporter and trace conversion).
func FromFlow(rec flow.Record) (Record, error) {
	src := rec.Src.Unmap()
	if !src.Is4() {
		return Record{}, fmt.Errorf("netflow: v5 cannot carry IPv6 source %v", rec.Src)
	}
	out := Record{
		SrcAddr: src,
		Input:   uint16(rec.In.Iface),
		Packets: rec.Packets,
		Octets:  rec.Bytes,
	}
	if rec.Dst.IsValid() && rec.Dst.Unmap().Is4() {
		out.DstAddr = rec.Dst.Unmap()
	} else {
		out.DstAddr = netip.AddrFrom4([4]byte{})
	}
	out.NextHop = netip.AddrFrom4([4]byte{})
	return out, nil
}
