package netflow

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"ipd/internal/flow"
)

// HealthObserver receives per-datagram transport-header accounting that
// the record sink cannot see: the v5 FlowSequence counter (counts the
// flows the exporter sent before this datagram), the export timestamp,
// and the sampling-interval field. Called once per accepted datagram,
// after exporter attribution, from the receive goroutine —
// implementations must be fast and must not block.
type HealthObserver interface {
	ObserveNetFlow(router flow.RouterID, seq uint32, records int, exportTime time.Time, sampling uint16)
}

// CollectorStats counts collector activity (all fields are cumulative and
// safe to read concurrently).
type CollectorStats struct {
	Datagrams       atomic.Uint64
	Records         atomic.Uint64
	Malformed       atomic.Uint64
	UnknownExporter atomic.Uint64
	// Panics counts datagrams whose decode or sink handoff panicked; the
	// receive loop recovers and keeps serving (the datagram is abandoned).
	Panics atomic.Uint64
}

// Collector receives NetFlow v5 datagrams over UDP, attributes them to
// border routers via the exporter registry, and hands flow records to a
// sink. It is the head of the deployment pipeline of §5.7 (flow readers in
// front of the single IPD process).
type Collector struct {
	mu        sync.RWMutex
	exporters map[netip.Addr]flow.RouterID
	// portExporters keys on the full source (addr, port) — needed when
	// several exporters share one address (lab setups on loopback, NAT).
	portExporters map[netip.AddrPort]flow.RouterID
	onUnknown     func(netip.Addr) (flow.RouterID, bool)

	sink   func(flow.Record)
	health HealthObserver
	stats  CollectorStats

	conn *net.UDPConn
}

// NewCollector returns a collector delivering records to sink (called from
// the receive loop; it must be fast or hand off to a channel).
func NewCollector(sink func(flow.Record)) (*Collector, error) {
	if sink == nil {
		return nil, fmt.Errorf("netflow: sink must not be nil")
	}
	return &Collector{
		exporters:     make(map[netip.Addr]flow.RouterID),
		portExporters: make(map[netip.AddrPort]flow.RouterID),
		sink:          sink,
	}, nil
}

// RegisterExporter maps a router's export source address to its RouterID.
// Datagrams from unregistered addresses are counted and dropped (production
// collectors must not trust unknown senders).
func (c *Collector) RegisterExporter(addr netip.Addr, router flow.RouterID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.exporters[addr.Unmap()] = router
}

// RegisterExporterPort maps a full (address, port) export source to a
// RouterID; it takes precedence over address-level registrations. Use it
// when several exporters share one source address.
func (c *Collector) RegisterExporterPort(src netip.AddrPort, router flow.RouterID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.portExporters[netip.AddrPortFrom(src.Addr().Unmap(), src.Port())] = router
}

// SetUnknownPolicy installs a callback deciding whether (and as which
// router) to auto-register a previously unknown exporter address. Without a
// policy, unknown exporters are counted and dropped.
func (c *Collector) SetUnknownPolicy(fn func(netip.Addr) (flow.RouterID, bool)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onUnknown = fn
}

// Exporters returns the number of registered exporters (address- plus
// port-level registrations).
func (c *Collector) Exporters() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.exporters) + len(c.portExporters)
}

// SetHealth attaches a health observer fed once per accepted datagram.
// Call before Serve.
func (c *Collector) SetHealth(h HealthObserver) { c.health = h }

// Stats returns the live counters.
func (c *Collector) Stats() *CollectorStats { return &c.stats }

// Listen binds the UDP socket. addr is like ":2055" or "127.0.0.1:0".
// It returns the bound address (useful with port 0).
func (c *Collector) Listen(addr string) (netip.AddrPort, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return netip.AddrPort{}, err
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return netip.AddrPort{}, err
	}
	c.conn = conn
	return conn.LocalAddr().(*net.UDPAddr).AddrPort(), nil
}

// Serve reads datagrams until ctx is cancelled or the socket fails. Listen
// must have been called. Serve returns nil after a cancellation-triggered
// close.
func (c *Collector) Serve(ctx context.Context) error {
	if c.conn == nil {
		return fmt.Errorf("netflow: Serve before Listen")
	}
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			c.conn.Close()
		case <-done:
		}
	}()

	buf := make([]byte, MaxDatagramLen)
	for {
		n, remote, err := c.conn.ReadFromUDPAddrPort(buf)
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		c.HandleDatagram(buf[:n], remote)
	}
}

// HandleDatagram processes one raw datagram attributed to the given source
// (exposed separately so the pipeline can be driven without a socket, e.g.
// from pcap replays or tests). Attribution prefers an exact (addr, port)
// registration, then the source address. A panic while decoding or sinking
// — one adversarial datagram tripping a decoder bug — is contained: the
// datagram is abandoned, Stats().Panics counts it, and the receive loop
// keeps serving.
func (c *Collector) HandleDatagram(b []byte, from netip.AddrPort) {
	defer func() {
		if recover() != nil {
			c.stats.Panics.Add(1)
		}
	}()
	d, err := Decode(b)
	if err != nil {
		c.stats.Malformed.Add(1)
		return
	}
	fromAddr := from.Addr().Unmap()
	c.mu.RLock()
	router, ok := c.portExporters[netip.AddrPortFrom(fromAddr, from.Port())]
	if !ok {
		router, ok = c.exporters[fromAddr]
	}
	policy := c.onUnknown
	c.mu.RUnlock()
	if !ok && policy != nil {
		if r, accept := policy(fromAddr); accept {
			c.mu.Lock()
			// Re-check under the write lock (concurrent datagrams).
			if existing, dup := c.exporters[fromAddr]; dup {
				r = existing
			} else {
				c.exporters[fromAddr] = r
			}
			c.mu.Unlock()
			router, ok = r, true
		}
	}
	if !ok {
		c.stats.UnknownExporter.Add(1)
		return
	}
	c.stats.Datagrams.Add(1)
	if c.health != nil {
		c.health.ObserveNetFlow(router, d.Header.FlowSequence, len(d.Records), d.Header.ExportTime(), d.Header.SamplingInterval)
	}
	for _, r := range d.Records {
		c.sink(ToFlow(d.Header, r, router))
		c.stats.Records.Add(1)
	}
}

// Exporter is a minimal v5 export client: it batches records into
// datagrams and sends them over UDP. Used by tests and the demo tooling to
// stand in for a border router.
type Exporter struct {
	conn     *net.UDPConn
	router   flow.RouterID
	sequence uint32
	pending  []Record
	pendingT Header
}

// NewExporter dials the collector at addr on behalf of the given router.
func NewExporter(addr string, router flow.RouterID) (*Exporter, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, udpAddr)
	if err != nil {
		return nil, err
	}
	return &Exporter{conn: conn, router: router}, nil
}

// Send converts and buffers a record, flushing a datagram when full.
func (e *Exporter) Send(rec flow.Record) error {
	r, err := FromFlow(rec)
	if err != nil {
		return err
	}
	if len(e.pending) == 0 {
		e.pendingT = Header{
			UnixSecs:  uint32(rec.Ts.Unix()),
			UnixNsecs: uint32(rec.Ts.Nanosecond()),
		}
	}
	e.pending = append(e.pending, r)
	if len(e.pending) >= MaxRecords {
		return e.Flush()
	}
	return nil
}

// Flush sends any buffered records as one datagram.
func (e *Exporter) Flush() error {
	if len(e.pending) == 0 {
		return nil
	}
	h := e.pendingT
	h.FlowSequence = e.sequence
	d := Datagram{Header: h, Records: e.pending}
	b, err := d.Encode()
	if err != nil {
		return err
	}
	if _, err := e.conn.Write(b); err != nil {
		return err
	}
	e.sequence += uint32(len(e.pending))
	e.pending = e.pending[:0]
	return nil
}

// Close flushes and closes the socket.
func (e *Exporter) Close() error {
	ferr := e.Flush()
	cerr := e.conn.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}

// LocalAddr returns the exporter's UDP source address.
func (e *Exporter) LocalAddr() netip.Addr {
	return e.LocalAddrPort().Addr()
}

// LocalAddrPort returns the exporter's full UDP source (register this with
// RegisterExporterPort when several exporters share an address).
func (e *Exporter) LocalAddrPort() netip.AddrPort {
	return e.conn.LocalAddr().(*net.UDPAddr).AddrPort()
}
