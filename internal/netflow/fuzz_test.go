package netflow

import (
	"net/netip"
	"testing"
	"time"

	"ipd/internal/flow"
)

// FuzzDecode ensures the v5 decoder never panics and that decoded datagrams
// re-encode.
func FuzzDecode(f *testing.F) {
	good, _ := (&Datagram{Header: sampleHeader(), Records: []Record{sampleRecord()}}).Encode()
	f.Add(good)
	f.Add([]byte{})
	f.Add(make([]byte, HeaderLen))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Decode(data)
		if err != nil {
			return
		}
		if _, err := d.Encode(); err != nil {
			t.Fatalf("decoded datagram failed to re-encode: %v", err)
		}
	})
}

type fuzzHealth struct {
	calls   int
	records int
}

func (h *fuzzHealth) ObserveNetFlow(_ flow.RouterID, _ uint32, records int, _ time.Time, _ uint16) {
	h.calls++
	h.records += records
}

// FuzzHandleDatagramHealth drives the full collector path — decode,
// attribution, health-header accounting, record sinking — with arbitrary
// bytes, seeded with sequence values at the 2^32 wrap, a restart-style
// reset, and a reordered header. The health observer must see exactly the
// accepted datagrams with their true record counts, and nothing may panic.
func FuzzHandleDatagramHealth(f *testing.F) {
	mk := func(seq uint32, n int) []byte {
		h := sampleHeader()
		h.FlowSequence = seq
		recs := make([]Record, n)
		for i := range recs {
			recs[i] = sampleRecord()
		}
		b, _ := (&Datagram{Header: h, Records: recs}).Encode()
		return b
	}
	f.Add(mk(0, 2))
	f.Add(mk(0xFFFFFFF0, 3)) // expected-next wraps past 2^32
	f.Add(mk(0xFFFFFFFF, 1))
	f.Add(mk(0, 1))  // reset to zero after the above: restart shape
	f.Add(mk(30, 2)) // backwards vs a large expected: reorder shape
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		sank := 0
		c, err := NewCollector(func(flow.Record) { sank++ })
		if err != nil {
			t.Fatal(err)
		}
		src := netip.MustParseAddrPort("192.0.2.1:2055")
		c.RegisterExporter(src.Addr(), 7)
		h := &fuzzHealth{}
		c.SetHealth(h)
		c.HandleDatagram(data, src)
		if got := c.Stats().Panics.Load(); got != 0 {
			t.Fatalf("datagram path panicked %d times", got)
		}
		if accepted := c.Stats().Datagrams.Load(); uint64(h.calls) != accepted {
			t.Fatalf("health saw %d datagrams, collector accepted %d", h.calls, accepted)
		}
		if h.records != sank {
			t.Fatalf("health saw %d records, sink saw %d", h.records, sank)
		}
	})
}
