package netflow

import "testing"

// FuzzDecode ensures the v5 decoder never panics and that decoded datagrams
// re-encode.
func FuzzDecode(f *testing.F) {
	good, _ := (&Datagram{Header: sampleHeader(), Records: []Record{sampleRecord()}}).Encode()
	f.Add(good)
	f.Add([]byte{})
	f.Add(make([]byte, HeaderLen))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Decode(data)
		if err != nil {
			return
		}
		if _, err := d.Encode(); err != nil {
			t.Fatalf("decoded datagram failed to re-encode: %v", err)
		}
	})
}
