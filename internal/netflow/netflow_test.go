package netflow

import (
	"context"
	"encoding/binary"
	"net/netip"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"ipd/internal/flow"
)

func sampleRecord() Record {
	return Record{
		SrcAddr:  netip.MustParseAddr("203.0.113.9"),
		DstAddr:  netip.MustParseAddr("198.51.100.7"),
		NextHop:  netip.MustParseAddr("10.0.0.1"),
		Input:    3,
		Output:   12,
		Packets:  100,
		Octets:   142000,
		First:    1000,
		Last:     2000,
		SrcPort:  443,
		DstPort:  52100,
		TCPFlags: 0x18,
		Proto:    6,
		Tos:      0,
		SrcAS:    64500,
		DstAS:    64501,
		SrcMask:  24,
		DstMask:  22,
	}
}

func sampleHeader() Header {
	return Header{
		SysUptime:        360000,
		UnixSecs:         1605571200,
		UnixNsecs:        500,
		FlowSequence:     42,
		EngineType:       1,
		EngineID:         7,
		SamplingInterval: 1000,
	}
}

func TestEncodeWireLayout(t *testing.T) {
	d := Datagram{Header: sampleHeader(), Records: []Record{sampleRecord()}}
	b, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != HeaderLen+RecordLen {
		t.Fatalf("len = %d", len(b))
	}
	// Spot-check the RFC-documented field offsets.
	if binary.BigEndian.Uint16(b[0:]) != 5 {
		t.Error("version field")
	}
	if binary.BigEndian.Uint16(b[2:]) != 1 {
		t.Error("count field")
	}
	if binary.BigEndian.Uint32(b[8:]) != 1605571200 {
		t.Error("unix_secs field")
	}
	if b[24] != 203 || b[25] != 0 || b[26] != 113 || b[27] != 9 {
		t.Error("srcaddr at offset 24")
	}
	if binary.BigEndian.Uint16(b[36:]) != 3 {
		t.Error("input iface at offset 36")
	}
	if b[62] != 6 {
		t.Error("proto at offset 62")
	}
}

func TestRoundTrip(t *testing.T) {
	d := Datagram{Header: sampleHeader(), Records: []Record{sampleRecord(), sampleRecord()}}
	d.Records[1].SrcAddr = netip.MustParseAddr("192.0.2.1")
	d.Header.Count = 2
	b, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header != d.Header {
		t.Errorf("header: %+v vs %+v", got.Header, d.Header)
	}
	if len(got.Records) != 2 {
		t.Fatalf("records = %d", len(got.Records))
	}
	for i := range got.Records {
		if got.Records[i] != d.Records[i] {
			t.Errorf("record %d: %+v vs %+v", i, got.Records[i], d.Records[i])
		}
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(src, dst [4]byte, input, srcPort uint16, pkts, octets uint32, proto uint8) bool {
		r := Record{
			SrcAddr: netip.AddrFrom4(src),
			DstAddr: netip.AddrFrom4(dst),
			NextHop: netip.AddrFrom4([4]byte{}),
			Input:   input, SrcPort: srcPort,
			Packets: pkts, Octets: octets, Proto: proto,
		}
		d := Datagram{Header: sampleHeader(), Records: []Record{r}}
		d.Header.Count = 1
		b, err := d.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(b)
		if err != nil {
			return false
		}
		return got.Records[0] == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEncodeValidation(t *testing.T) {
	d := Datagram{Header: sampleHeader()}
	if _, err := d.Encode(); err == nil {
		t.Error("empty datagram should fail")
	}
	d.Records = make([]Record, MaxRecords+1)
	if _, err := d.Encode(); err == nil {
		t.Error("oversized datagram should fail")
	}
	d.Records = []Record{sampleRecord()}
	d.Header.Count = 5
	if _, err := d.Encode(); err == nil {
		t.Error("count mismatch should fail")
	}
	d.Header.Count = 0
	d.Records[0].SrcAddr = netip.MustParseAddr("2001:db8::1")
	if _, err := d.Encode(); err == nil {
		t.Error("IPv6 source should fail in v5")
	}
}

func TestDecodeValidation(t *testing.T) {
	good, err := (&Datagram{Header: sampleHeader(), Records: []Record{sampleRecord()}}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"short":          good[:10],
		"truncated body": good[:HeaderLen+10],
		"bad version":    append([]byte{0, 9}, good[2:]...),
	}
	zeroCount := append([]byte(nil), good...)
	binary.BigEndian.PutUint16(zeroCount[2:], 0)
	cases["zero count"] = zeroCount
	bigCount := append([]byte(nil), good...)
	binary.BigEndian.PutUint16(bigCount[2:], 31)
	cases["count over max"] = bigCount
	for name, b := range cases {
		if _, err := Decode(b); err == nil {
			t.Errorf("%s should fail", name)
		}
	}
}

func TestToFlowFromFlow(t *testing.T) {
	h := sampleHeader()
	r := sampleRecord()
	rec := ToFlow(h, r, 77)
	if rec.Src != r.SrcAddr || rec.Dst != r.DstAddr {
		t.Errorf("addrs: %+v", rec)
	}
	if rec.In != (flow.Ingress{Router: 77, Iface: 3}) {
		t.Errorf("ingress = %v", rec.In)
	}
	if !rec.Ts.Equal(h.ExportTime()) || rec.Bytes != r.Octets || rec.Packets != r.Packets {
		t.Errorf("fields: %+v", rec)
	}
	back, err := FromFlow(rec)
	if err != nil {
		t.Fatal(err)
	}
	if back.SrcAddr != r.SrcAddr || back.Input != r.Input || back.Octets != r.Octets {
		t.Errorf("FromFlow = %+v", back)
	}
	if _, err := FromFlow(flow.Record{Ts: time.Now(), Src: netip.MustParseAddr("2001:db8::1")}); err == nil {
		t.Error("IPv6 FromFlow should fail")
	}
	// Missing destination encodes as the zero address.
	back, err = FromFlow(flow.Record{Ts: time.Now(), Src: netip.MustParseAddr("1.2.3.4")})
	if err != nil || back.DstAddr != netip.AddrFrom4([4]byte{}) {
		t.Errorf("no-dst FromFlow = %+v err=%v", back, err)
	}
}

func TestCollectorEndToEnd(t *testing.T) {
	var mu sync.Mutex
	var got []flow.Record
	c, err := NewCollector(func(r flow.Record) {
		mu.Lock()
		got = append(got, r)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	addrPort, err := c.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- c.Serve(ctx) }()

	exp, err := NewExporter(addrPort.String(), 9)
	if err != nil {
		t.Fatal(err)
	}
	c.RegisterExporter(exp.LocalAddr(), 9)
	if c.Exporters() != 1 {
		t.Fatal("exporter not registered")
	}

	ts := time.Unix(1605571200, 0).UTC()
	for i := 0; i < 65; i++ { // crosses two 30-record datagram boundaries
		a := netip.MustParseAddr("198.51.100.0").As4()
		a[3] = byte(i)
		if err := exp.Send(flow.Record{Ts: ts, Src: netip.AddrFrom4(a), In: flow.Ingress{Router: 9, Iface: 4}, Bytes: 100, Packets: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}

	deadline := time.After(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == 65 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("received %d/65 records", n)
		case <-time.After(10 * time.Millisecond):
		}
	}
	mu.Lock()
	first := got[0]
	mu.Unlock()
	if first.In != (flow.Ingress{Router: 9, Iface: 4}) {
		t.Errorf("ingress = %v", first.In)
	}
	if !first.Ts.Equal(ts) {
		t.Errorf("ts = %v", first.Ts)
	}
	if c.Stats().Records.Load() != 65 || c.Stats().Datagrams.Load() != 3 {
		t.Errorf("stats: %d records, %d datagrams",
			c.Stats().Records.Load(), c.Stats().Datagrams.Load())
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not stop")
	}
}

func TestCollectorRejectsUnknownAndMalformed(t *testing.T) {
	c, err := NewCollector(func(flow.Record) { t.Error("sink must not be called") })
	if err != nil {
		t.Fatal(err)
	}
	// Unknown exporter.
	good, err := (&Datagram{Header: sampleHeader(), Records: []Record{sampleRecord()}}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	c.HandleDatagram(good, netip.AddrPortFrom(netip.MustParseAddr("192.0.2.200"), 2055))
	if c.Stats().UnknownExporter.Load() != 1 {
		t.Error("unknown exporter not counted")
	}
	// Malformed datagram from a known exporter.
	c.RegisterExporter(netip.MustParseAddr("192.0.2.200"), 1)
	c.HandleDatagram(good[:30], netip.AddrPortFrom(netip.MustParseAddr("192.0.2.200"), 2055))
	if c.Stats().Malformed.Load() != 1 {
		t.Error("malformed not counted")
	}
	if c.Stats().Records.Load() != 0 {
		t.Error("no records should have been delivered")
	}
}

func TestCollectorValidation(t *testing.T) {
	if _, err := NewCollector(nil); err == nil {
		t.Error("nil sink should fail")
	}
	c, _ := NewCollector(func(flow.Record) {})
	if err := c.Serve(context.Background()); err == nil {
		t.Error("Serve before Listen should fail")
	}
	if _, err := c.Listen("not-an-addr:xyz"); err == nil {
		t.Error("bad listen addr should fail")
	}
}

func BenchmarkDecode(b *testing.B) {
	recs := make([]Record, MaxRecords)
	for i := range recs {
		recs[i] = sampleRecord()
	}
	d := Datagram{Header: sampleHeader(), Records: recs}
	d.Header.Count = MaxRecords
	buf, err := d.Encode()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCollectorUnknownPolicy(t *testing.T) {
	var got []flow.Record
	c, err := NewCollector(func(r flow.Record) { got = append(got, r) })
	if err != nil {
		t.Fatal(err)
	}
	next := flow.RouterID(10)
	c.SetUnknownPolicy(func(addr netip.Addr) (flow.RouterID, bool) {
		if addr == netip.MustParseAddr("192.0.2.66") {
			return 0, false // explicitly refused
		}
		id := next
		next++
		return id, true
	})
	good, err := (&Datagram{Header: sampleHeader(), Records: []Record{sampleRecord()}}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	// First unknown exporter: auto-registered as router 10.
	c.HandleDatagram(good, netip.AddrPortFrom(netip.MustParseAddr("192.0.2.50"), 2055))
	// Same exporter again: reuses the registration, no new ID.
	c.HandleDatagram(good, netip.AddrPortFrom(netip.MustParseAddr("192.0.2.50"), 2055))
	// Refused exporter: dropped.
	c.HandleDatagram(good, netip.AddrPortFrom(netip.MustParseAddr("192.0.2.66"), 2055))
	if len(got) != 2 {
		t.Fatalf("records = %d, want 2", len(got))
	}
	for _, r := range got {
		if r.In.Router != 10 {
			t.Errorf("router = %d, want 10", r.In.Router)
		}
	}
	if c.Stats().UnknownExporter.Load() != 1 {
		t.Errorf("unknown counter = %d", c.Stats().UnknownExporter.Load())
	}
	if c.Exporters() != 1 {
		t.Errorf("exporters = %d", c.Exporters())
	}
}

// TestCollectorContainsSinkPanic pins the receive-loop containment: a panic
// out of the sink (or decoder) must not escape HandleDatagram — the datagram
// is abandoned, counted in Stats().Panics, and the next one flows normally.
func TestCollectorContainsSinkPanic(t *testing.T) {
	calls := 0
	c, err := NewCollector(func(flow.Record) {
		calls++
		if calls == 1 {
			panic("poisoned record")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	src := netip.MustParseAddr("192.0.2.7")
	c.RegisterExporter(src, 1)
	good, err := (&Datagram{Header: sampleHeader(), Records: []Record{sampleRecord()}}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	from := netip.AddrPortFrom(src, 2055)
	c.HandleDatagram(good, from) // sink panics: contained
	if got := c.Stats().Panics.Load(); got != 1 {
		t.Fatalf("Panics = %d, want 1", got)
	}
	c.HandleDatagram(good, from) // collector still serves
	if calls != 2 {
		t.Errorf("sink calls = %d, want 2 (loop survived the panic)", calls)
	}
	if got := c.Stats().Panics.Load(); got != 1 {
		t.Errorf("Panics = %d after healthy datagram, want still 1", got)
	}
}
