package bgp

import (
	"net/netip"
	"testing"
	"time"

	"ipd/internal/flow"
	"ipd/internal/topology"
)

func mustPrefix(t testing.TB, s string) netip.Prefix {
	t.Helper()
	p, err := netip.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func ts(sec int64) time.Time { return time.Unix(sec, 0).UTC() }

func TestInsertValidation(t *testing.T) {
	tb := NewTable(ts(0))
	if err := tb.Insert(Route{Prefix: mustPrefix(t, "10.0.0.0/8")}); err == nil {
		t.Error("route without next hops should fail")
	}
	if err := tb.Insert(Route{
		Prefix: mustPrefix(t, "10.0.0.0/8"), NextHops: []flow.RouterID{1, 2}, Best: 3,
	}); err == nil {
		t.Error("best not among candidates should fail")
	}
	if err := tb.Insert(Route{NextHops: []flow.RouterID{1}, Best: 1}); err == nil {
		t.Error("invalid prefix should fail")
	}
}

func TestInsertDedupAndSort(t *testing.T) {
	tb := NewTable(ts(0))
	err := tb.Insert(Route{
		Prefix:   mustPrefix(t, "10.0.0.0/8"),
		Origin:   64500,
		NextHops: []flow.RouterID{5, 1, 5, 3},
		Best:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, ok := tb.Get(mustPrefix(t, "10.0.0.0/8"))
	if !ok {
		t.Fatal("Get missed")
	}
	want := []flow.RouterID{1, 3, 5}
	if len(r.NextHops) != 3 || r.NextHops[0] != want[0] || r.NextHops[1] != want[1] || r.NextHops[2] != want[2] {
		t.Errorf("NextHops = %v, want %v", r.NextHops, want)
	}
}

func buildTable(t *testing.T) *Table {
	t.Helper()
	tb := NewTable(ts(100))
	routes := []Route{
		{Prefix: mustPrefix(t, "10.0.0.0/8"), Origin: 64500, NextHops: []flow.RouterID{1, 2}, Best: 1},
		{Prefix: mustPrefix(t, "10.1.0.0/16"), Origin: 64500, NextHops: []flow.RouterID{3}, Best: 3},
		{Prefix: mustPrefix(t, "192.0.2.0/24"), Origin: 64501, NextHops: []flow.RouterID{4, 5, 6}, Best: 5},
	}
	for _, r := range routes {
		if err := tb.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func TestLookups(t *testing.T) {
	tb := buildTable(t)
	if tb.NumRoutes() != 3 {
		t.Fatalf("NumRoutes = %d", tb.NumRoutes())
	}
	r, ok := tb.LookupAddr(netip.MustParseAddr("10.1.2.3"))
	if !ok || r.Prefix != mustPrefix(t, "10.1.0.0/16") {
		t.Errorf("LookupAddr = %+v ok=%v", r, ok)
	}
	r, ok = tb.LookupAddr(netip.MustParseAddr("10.9.9.9"))
	if !ok || r.Prefix != mustPrefix(t, "10.0.0.0/8") {
		t.Errorf("LookupAddr fallback = %+v", r)
	}
	if _, ok := tb.LookupAddr(netip.MustParseAddr("8.8.8.8")); ok {
		t.Error("unrouted address should miss")
	}
	eg, ok := tb.EgressRouter(netip.MustParseAddr("192.0.2.77"))
	if !ok || eg != 5 {
		t.Errorf("EgressRouter = %d ok=%v", eg, ok)
	}
	if _, ok := tb.EgressRouter(netip.MustParseAddr("8.8.8.8")); ok {
		t.Error("unrouted egress should miss")
	}
	r, ok = tb.LookupPrefix(mustPrefix(t, "10.1.2.0/24"))
	if !ok || r.Prefix != mustPrefix(t, "10.1.0.0/16") {
		t.Errorf("LookupPrefix = %+v", r)
	}
	if _, ok := tb.Get(mustPrefix(t, "10.2.0.0/16")); ok {
		t.Error("Get of absent exact prefix should miss")
	}
}

func TestPrefixesOfAndNextHopCounts(t *testing.T) {
	tb := buildTable(t)
	ps := tb.PrefixesOf(64500)
	if len(ps) != 2 {
		t.Fatalf("PrefixesOf = %v", ps)
	}
	all := tb.NextHopCounts(nil)
	if len(all) != 3 {
		t.Fatalf("NextHopCounts(nil) = %v", all)
	}
	sum := 0
	for _, c := range all {
		sum += c
	}
	if sum != 2+1+3 {
		t.Errorf("counts sum = %d", sum)
	}
	only := tb.NextHopCounts(map[topology.ASN]bool{64501: true})
	if len(only) != 1 || only[0] != 3 {
		t.Errorf("filtered counts = %v", only)
	}
}

func TestRoutesSorted(t *testing.T) {
	tb := buildTable(t)
	rs := tb.Routes()
	if len(rs) != 3 {
		t.Fatalf("Routes = %d", len(rs))
	}
	if rs[0].Prefix != mustPrefix(t, "10.0.0.0/8") || rs[2].Prefix != mustPrefix(t, "192.0.2.0/24") {
		t.Errorf("order = %v, %v, %v", rs[0].Prefix, rs[1].Prefix, rs[2].Prefix)
	}
}

func TestDumpSeries(t *testing.T) {
	var s DumpSeries
	for _, sec := range []int64{100, 200, 300} {
		if err := s.Add(NewTable(ts(sec))); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if err := s.Add(NewTable(ts(250))); err == nil {
		t.Error("out-of-order Add should fail")
	}
	if err := s.Add(NewTable(ts(300))); err == nil {
		t.Error("duplicate-time Add should fail")
	}
	if _, ok := s.At(ts(50)); ok {
		t.Error("At before first dump should miss")
	}
	tb, ok := s.At(ts(100))
	if !ok || !tb.At.Equal(ts(100)) {
		t.Errorf("At(100) = %v", tb.At)
	}
	tb, ok = s.At(ts(299))
	if !ok || !tb.At.Equal(ts(200)) {
		t.Errorf("At(299) = %v", tb.At)
	}
	tb, ok = s.At(ts(10000))
	if !ok || !tb.At.Equal(ts(300)) {
		t.Errorf("At(10000) = %v", tb.At)
	}
	if got := len(s.All()); got != 3 {
		t.Errorf("All = %d", got)
	}
}
