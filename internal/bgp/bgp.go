// Package bgp models the BGP-derived inputs of the paper's evaluation: a
// routing information base (RIB) with the *candidate* next-hop border
// routers each prefix is announced over (Fig. 3's dotted "BGP paths"
// curves), the selected best path whose next-hop is the *egress* router used
// for the path-(a)symmetry study (§5.5), and periodic table dumps (§4:
// "periodic BGP table dumps from the same period").
//
// The paper's central point — BGP cannot predict ingress — is an input
// property here: the traffic generator assigns actual ingress points
// independently of what this RIB announces, with a controlled overlap.
package bgp

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"ipd/internal/flow"
	"ipd/internal/topology"
	"ipd/internal/trie"
)

// Route is one RIB entry.
type Route struct {
	// Prefix is the announced prefix.
	Prefix netip.Prefix
	// Origin is the originating AS.
	Origin topology.ASN
	// NextHops are all border routers the prefix is currently announced
	// over (candidate ingress points from BGP's point of view). Sorted,
	// non-empty.
	NextHops []flow.RouterID
	// Best is the selected best path's next-hop router: the router the ISP
	// egresses through for traffic *toward* this prefix.
	Best flow.RouterID
}

func (r Route) validate() error {
	if !r.Prefix.IsValid() {
		return fmt.Errorf("bgp: invalid prefix in route %+v", r)
	}
	if len(r.NextHops) == 0 {
		return fmt.Errorf("bgp: route for %v has no next hops", r.Prefix)
	}
	for _, nh := range r.NextHops {
		if nh == r.Best {
			return nil
		}
	}
	return fmt.Errorf("bgp: best next-hop %d of %v not among candidates %v", r.Best, r.Prefix, r.NextHops)
}

// Table is a RIB snapshot (one "table dump").
type Table struct {
	// At is the dump timestamp.
	At  time.Time
	rib *trie.Trie[*Route]
}

// NewTable returns an empty table stamped at.
func NewTable(at time.Time) *Table {
	return &Table{At: at, rib: trie.New[*Route]()}
}

// Insert adds or replaces a route. Next hops are sorted and de-duplicated.
func (t *Table) Insert(r Route) error {
	nh := append([]flow.RouterID(nil), r.NextHops...)
	sort.Slice(nh, func(i, j int) bool { return nh[i] < nh[j] })
	nh = dedupRouters(nh)
	r.NextHops = nh
	if err := r.validate(); err != nil {
		return err
	}
	r.Prefix = r.Prefix.Masked()
	t.rib.Insert(r.Prefix, &r)
	return nil
}

func dedupRouters(in []flow.RouterID) []flow.RouterID {
	out := in[:0]
	for i, r := range in {
		if i == 0 || r != in[i-1] {
			out = append(out, r)
		}
	}
	return out
}

// NumRoutes returns the number of RIB entries.
func (t *Table) NumRoutes() int { return t.rib.Len() }

// LookupAddr returns the best-matching route for addr.
func (t *Table) LookupAddr(addr netip.Addr) (Route, bool) {
	_, r, ok := t.rib.Lookup(addr)
	if !ok {
		return Route{}, false
	}
	return *r, true
}

// LookupPrefix returns the most specific route covering all of p.
func (t *Table) LookupPrefix(p netip.Prefix) (Route, bool) {
	_, r, ok := t.rib.LookupPrefix(p)
	if !ok {
		return Route{}, false
	}
	return *r, true
}

// Get returns the route stored exactly at p.
func (t *Table) Get(p netip.Prefix) (Route, bool) {
	r, ok := t.rib.Get(p)
	if !ok {
		return Route{}, false
	}
	return *r, true
}

// EgressRouter returns the router the ISP egresses through toward addr.
func (t *Table) EgressRouter(addr netip.Addr) (flow.RouterID, bool) {
	r, ok := t.LookupAddr(addr)
	if !ok {
		return 0, false
	}
	return r.Best, true
}

// Walk visits routes in address order.
func (t *Table) Walk(fn func(Route) bool) {
	t.rib.Walk(func(_ netip.Prefix, r *Route) bool { return fn(*r) })
}

// Routes returns all routes sorted by prefix.
func (t *Table) Routes() []Route {
	out := make([]Route, 0, t.rib.Len())
	t.Walk(func(r Route) bool {
		out = append(out, r)
		return true
	})
	return out
}

// PrefixesOf returns the prefixes originated by asn, sorted.
func (t *Table) PrefixesOf(asn topology.ASN) []netip.Prefix {
	var out []netip.Prefix
	t.Walk(func(r Route) bool {
		if r.Origin == asn {
			out = append(out, r.Prefix)
		}
		return true
	})
	return out
}

// NextHopCounts returns, for each routed prefix, the number of candidate
// next-hop routers — the input to Fig. 3's dotted curves. The optional
// filter restricts to prefixes of the given origin ASes (nil = all).
func (t *Table) NextHopCounts(origins map[topology.ASN]bool) []int {
	var out []int
	t.Walk(func(r Route) bool {
		if origins == nil || origins[r.Origin] {
			out = append(out, len(r.NextHops))
		}
		return true
	})
	return out
}

// DumpSeries is a time-ordered sequence of table dumps.
type DumpSeries struct {
	tables []*Table
}

// Add appends a dump; dumps must be added in increasing time order.
func (s *DumpSeries) Add(t *Table) error {
	if n := len(s.tables); n > 0 && !s.tables[n-1].At.Before(t.At) {
		return fmt.Errorf("bgp: dump at %v not after previous %v", t.At, s.tables[n-1].At)
	}
	s.tables = append(s.tables, t)
	return nil
}

// Len returns the number of dumps.
func (s *DumpSeries) Len() int { return len(s.tables) }

// At returns the most recent dump taken at or before ts.
func (s *DumpSeries) At(ts time.Time) (*Table, bool) {
	i := sort.Search(len(s.tables), func(i int) bool { return s.tables[i].At.After(ts) })
	if i == 0 {
		return nil, false
	}
	return s.tables[i-1], true
}

// All returns the dumps in time order.
func (s *DumpSeries) All() []*Table { return append([]*Table(nil), s.tables...) }
