package faultinject

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func input(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)
	}
	return b
}

func readAll(t *testing.T, cfg ReaderConfig, src []byte) ([]byte, error) {
	t.Helper()
	r := NewReader(bytes.NewReader(src), cfg)
	return io.ReadAll(r)
}

func TestReaderTransparentByDefault(t *testing.T) {
	src := input(1000)
	got, err := readAll(t, ReaderConfig{}, src)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Error("zero config mutated the stream")
	}
}

func TestReaderDeterministic(t *testing.T) {
	src := input(4096)
	cfg := ReaderConfig{Seed: 7, BitFlipEvery: 100}
	a, err := readAll(t, cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	b, err := readAll(t, cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("same seed produced different corruption")
	}
	if bytes.Equal(a, src) {
		t.Error("bit flips injected nothing over 4096 bytes")
	}
	c, err := readAll(t, ReaderConfig{Seed: 8, BitFlipEvery: 100}, src)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, c) {
		t.Error("different seeds produced identical corruption")
	}
}

func TestReaderBitFlipsIndependentOfReadSize(t *testing.T) {
	src := input(2048)
	cfg := ReaderConfig{Seed: 3, BitFlipEvery: 64}
	whole, err := readAll(t, cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	// Same faults when the consumer reads one byte at a time.
	r := NewReader(bytes.NewReader(src), cfg)
	var tiny []byte
	one := make([]byte, 1)
	for {
		n, err := r.Read(one)
		tiny = append(tiny, one[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(whole, tiny) {
		t.Error("fault positions depend on caller read sizing")
	}
}

func TestReaderCorruptWindow(t *testing.T) {
	src := input(300)
	got, err := readAll(t, ReaderConfig{Seed: 1, CorruptFrom: 100, CorruptLen: 20}, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(src) {
		t.Fatalf("length changed: %d vs %d", len(got), len(src))
	}
	if !bytes.Equal(got[:100], src[:100]) || !bytes.Equal(got[120:], src[120:]) {
		t.Error("corruption leaked outside the window")
	}
	if bytes.Equal(got[100:120], src[100:120]) {
		t.Error("window not corrupted")
	}
}

func TestReaderSkipWindow(t *testing.T) {
	src := input(300)
	got, err := readAll(t, ReaderConfig{SkipFrom: 50, SkipLen: 30}, src)
	if err != nil {
		t.Fatal(err)
	}
	want := append(append([]byte{}, src[:50]...), src[80:]...)
	if !bytes.Equal(got, want) {
		t.Error("skip window did not cut the exact byte range")
	}
}

func TestReaderTruncateAt(t *testing.T) {
	src := input(500)
	got, err := readAll(t, ReaderConfig{TruncateAt: 123}, src)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src[:123]) {
		t.Errorf("truncated stream = %d bytes, want exactly 123 unmodified", len(got))
	}
}

func TestReaderErrAfter(t *testing.T) {
	src := input(500)
	got, err := readAll(t, ReaderConfig{ErrAfter: 200}, src)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if !bytes.Equal(got, src[:200]) {
		t.Errorf("delivered %d clean bytes before the error, want exactly 200", len(got))
	}
}

func TestWriterFailAfter(t *testing.T) {
	var sink bytes.Buffer
	w := NewWriter(&sink, WriterConfig{FailAfter: 10})
	n, err := w.Write(input(25))
	if n != 10 || !errors.Is(err, ErrInjected) {
		t.Fatalf("Write = (%d, %v), want torn write of 10 bytes with ErrInjected", n, err)
	}
	if sink.Len() != 10 {
		t.Errorf("sink holds %d bytes, want the 10 accepted before failure", sink.Len())
	}
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Error("writes after failure must keep failing")
	}
}

func TestWriterFailAlways(t *testing.T) {
	w := NewWriter(io.Discard, WriterConfig{FailAlways: true})
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Errorf("err = %v, want ErrInjected", err)
	}
}

func TestWriterShortWrites(t *testing.T) {
	var sink bytes.Buffer
	w := NewWriter(&sink, WriterConfig{ShortWrites: true})
	src := input(100)
	if n, err := w.Write(src); n != 100 || err != nil {
		t.Fatalf("Write = (%d, %v)", n, err)
	}
	if !bytes.Equal(sink.Bytes(), src) {
		t.Error("short writes corrupted the data")
	}
}
