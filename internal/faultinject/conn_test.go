package faultinject

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// pipePair returns two ends of an in-memory conn, the a side wrapped with
// cfg.
func pipePair(cfg ConnConfig) (*Conn, net.Conn) {
	a, b := net.Pipe()
	return WrapConn(a, cfg), b
}

func TestConnTransparent(t *testing.T) {
	fc, peer := pipePair(ConnConfig{})
	defer fc.Close()
	defer peer.Close()

	msg := []byte("hello over the wire")
	go func() {
		peer.Write(msg)
		peer.Close()
	}()
	got, err := io.ReadAll(fc)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q, want %q", got, msg)
	}
	if fc.ReadDelivered() != int64(len(msg)) {
		t.Fatalf("ReadDelivered = %d, want %d", fc.ReadDelivered(), len(msg))
	}
}

// TestConnCutReadAfter: the receive side dies with ErrInjected after exactly
// N delivered bytes, and with CloseOnFault the peer's next write observes
// the closed pipe.
func TestConnCutReadAfter(t *testing.T) {
	const cut = 10
	fc, peer := pipePair(ConnConfig{
		Read:         ReaderConfig{ErrAfter: cut},
		CloseOnFault: true,
	})
	defer fc.Close()
	defer peer.Close()

	writeErr := make(chan error, 1)
	go func() {
		buf := make([]byte, 64)
		var err error
		for err == nil {
			peer.SetWriteDeadline(time.Now().Add(2 * time.Second))
			_, err = peer.Write(buf)
		}
		writeErr <- err
	}()

	got, err := io.ReadAll(fc)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("read error = %v, want ErrInjected", err)
	}
	if len(got) != cut {
		t.Fatalf("delivered %d bytes before cut, want %d", len(got), cut)
	}
	if err := <-writeErr; err == nil {
		t.Fatal("peer write kept succeeding after CloseOnFault cut")
	}
}

// TestConnTornWrite: Write.FailAfter accepts exactly the prefix and reports
// ErrInjected with a short write — the torn-write shape, keyed to the
// accepted offset across multiple Write calls.
func TestConnTornWrite(t *testing.T) {
	const tearAt = 7
	fc, peer := pipePair(ConnConfig{Write: WriterConfig{FailAfter: tearAt}})
	defer fc.Close()
	defer peer.Close()

	var got bytes.Buffer
	done := make(chan struct{})
	go func() {
		io.Copy(&got, peer)
		close(done)
	}()

	n1, err := fc.Write([]byte("abcd")) // 4 bytes, below the tear
	if n1 != 4 || err != nil {
		t.Fatalf("first write: n=%d err=%v", n1, err)
	}
	n2, err := fc.Write([]byte("efghij")) // crosses the tear at offset 7
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("second write error = %v, want ErrInjected", err)
	}
	if n1+n2 != tearAt {
		t.Fatalf("accepted %d bytes total, want %d", n1+n2, tearAt)
	}
	if fc.WriteAccepted() != tearAt {
		t.Fatalf("WriteAccepted = %d, want %d", fc.WriteAccepted(), tearAt)
	}
	fc.Close()
	<-done
	if got.String() != "abcdefg" {
		t.Fatalf("peer received %q, want %q", got.String(), "abcdefg")
	}
}

// TestConnBitFlipDeterminism: the same seed corrupts the same bytes, a
// different seed corrupts different ones.
func TestConnBitFlipDeterminism(t *testing.T) {
	run := func(seed uint64) []byte {
		fc, peer := pipePair(ConnConfig{Read: ReaderConfig{Seed: seed, BitFlipEvery: 16}})
		defer fc.Close()
		msg := bytes.Repeat([]byte{0xAA}, 256)
		go func() {
			peer.Write(msg)
			peer.Close()
		}()
		got, err := io.ReadAll(fc)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		return got
	}
	a1, a2, b := run(42), run(42), run(43)
	if !bytes.Equal(a1, a2) {
		t.Fatal("same seed produced different corruption")
	}
	if bytes.Equal(a1, b) {
		t.Fatal("different seeds produced identical corruption")
	}
	if bytes.Equal(a1, bytes.Repeat([]byte{0xAA}, 256)) {
		t.Fatal("no bits were flipped")
	}
}

// TestListenerSchedule: each accepted conn gets the config for its accept
// index; here the first session is cut immediately and the second is clean.
func TestListenerSchedule(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := WrapListener(inner, func(i int) ConnConfig {
		if i == 0 {
			return ConnConfig{Read: ReaderConfig{ErrAfter: 1}, CloseOnFault: true}
		}
		return ConnConfig{}
	})
	defer ln.Close()

	serve := func() ([]byte, error) {
		c, err := ln.Accept()
		if err != nil {
			return nil, err
		}
		defer c.Close()
		return io.ReadAll(c)
	}
	results := make(chan error, 2)
	go func() {
		_, err := serve() // session 0: cut after 1 byte
		results <- err
	}()
	go func() {
		got, err := serve() // session 1: clean
		if err == nil && string(got) != "second" {
			err = errors.New("clean session corrupted: " + string(got))
		}
		results <- err
	}()

	dial := func(msg string) {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Error(err)
			return
		}
		c.Write([]byte(msg))
		c.Close()
	}
	dial("first-session-payload")
	// Wait for session 0 to finish before dialing again so accept order is
	// deterministic.
	if err := <-results; !errors.Is(err, ErrInjected) {
		t.Fatalf("session 0 error = %v, want ErrInjected", err)
	}
	dial("second")
	if err := <-results; err != nil {
		t.Fatalf("session 1: %v", err)
	}
	if ln.Accepted() != 2 {
		t.Fatalf("Accepted = %d, want 2", ln.Accepted())
	}
}

// TestConnStall: StallEvery/StallFor introduces real wall-clock delay on the
// read path (the silence-window primitive the cluster harness uses).
func TestConnStall(t *testing.T) {
	fc, peer := pipePair(ConnConfig{
		Read: ReaderConfig{StallEvery: 4, StallFor: 30 * time.Millisecond},
	})
	defer fc.Close()
	msg := make([]byte, 16)
	go func() {
		peer.Write(msg)
		peer.Close()
	}()
	start := time.Now()
	if _, err := io.ReadAll(fc); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 100*time.Millisecond {
		t.Fatalf("16 bytes with a stall every 4 took %v, want >= 100ms", d)
	}
}
