package faultinject

import (
	"errors"
	"net"
	"sync"
)

// ConnConfig selects the faults a wrapped net.Conn injects, one config per
// direction, reusing the Reader/Writer shapes so every fault the file-level
// chaos tests know (bit flips, burst corruption, stalls, cut-after-N-bytes,
// torn writes) applies unchanged to a network stream. The zero value is a
// transparent wrapper.
//
// Cuts are expressed with the existing offset-keyed fields: Read.ErrAfter
// cuts the receive side after N delivered bytes, Write.FailAfter tears the
// send side after N accepted bytes. With CloseOnFault set, the first
// injected fault also closes the underlying conn so the peer observes the
// cut too — the shape of a mid-stream TCP RST rather than a local-only
// error.
type ConnConfig struct {
	// Read faults apply to bytes read from the peer (delivered-offset keyed).
	Read ReaderConfig
	// Write faults apply to bytes written to the peer (accepted-offset
	// keyed); FailAfter is the torn write.
	Write WriterConfig
	// CloseOnFault closes the underlying conn when an injected fault first
	// fires, so both ends see the connection die.
	CloseOnFault bool
}

// Conn wraps a net.Conn with deterministic seeded fault injection on both
// directions. Deadlines, addresses, and Close pass through to the wrapped
// conn. Like real conns, one concurrent reader plus one concurrent writer
// are allowed; concurrent Reads (or Writes) are not.
type Conn struct {
	net.Conn
	cfg ConnConfig
	fr  *Reader
	fw  *Writer

	closeOnce sync.Once
}

// WrapConn applies cfg to c.
func WrapConn(c net.Conn, cfg ConnConfig) *Conn {
	return &Conn{
		Conn: c,
		cfg:  cfg,
		fr:   NewReader(c, cfg.Read),
		fw:   NewWriter(c, cfg.Write),
	}
}

func (c *Conn) Read(p []byte) (int, error) {
	n, err := c.fr.Read(p)
	c.maybeCut(err)
	return n, err
}

func (c *Conn) Write(p []byte) (int, error) {
	n, err := c.fw.Write(p)
	c.maybeCut(err)
	return n, err
}

func (c *Conn) maybeCut(err error) {
	if err == nil || !c.cfg.CloseOnFault || !errors.Is(err, ErrInjected) {
		return
	}
	c.closeOnce.Do(func() { c.Conn.Close() })
}

// ReadDelivered returns how many bytes have been delivered to the caller.
func (c *Conn) ReadDelivered() int64 { return c.fr.off }

// WriteAccepted returns how many bytes the write side has accepted.
func (c *Conn) WriteAccepted() int64 { return c.fw.Written() }

// Listener wraps a net.Listener so every accepted conn carries a fault
// config chosen by accept index — a deterministic per-connection chaos
// schedule (e.g. "cut the first two sessions mid-handshake, leave the third
// clean").
type Listener struct {
	net.Listener

	mu       sync.Mutex
	accepted int
	schedule func(connIndex int) ConnConfig
}

// WrapListener wraps l. schedule is called with the zero-based accept index
// of each connection and returns the fault config to apply; nil means every
// conn is transparent.
func WrapListener(l net.Listener, schedule func(connIndex int) ConnConfig) *Listener {
	return &Listener{Listener: l, schedule: schedule}
}

// Accepted returns how many connections have been accepted so far.
func (l *Listener) Accepted() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.accepted
}

func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	i := l.accepted
	l.accepted++
	l.mu.Unlock()
	var cfg ConnConfig
	if l.schedule != nil {
		cfg = l.schedule(i)
	}
	return WrapConn(c, cfg), nil
}
