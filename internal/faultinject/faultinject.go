// Package faultinject wraps io.Reader/io.Writer — and, for the delta
// transport, net.Conn/net.Listener — with deterministic, seeded fault
// injection for the chaos tests of the crash-recovery and cluster layers:
// bit flips, truncation, short reads, stalls, connection cuts, torn writes,
// and write errors. Every fault position is derived from the seed, so a
// failing chaos test reproduces exactly by rerunning with the same
// configuration.
//
// The package is a test harness, not a production facility: it lives under
// internal/ and is imported only from _test files and the chaos acceptance
// harnesses under examples/.
package faultinject

import (
	"errors"
	"io"
	"time"
)

// ErrInjected is the error every injected read/write failure returns, so
// tests can assert the failure came from the harness and not the code under
// test.
var ErrInjected = errors.New("faultinject: injected fault")

// rng is xorshift64*: tiny, deterministic, and plenty for picking fault
// positions.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// ReaderConfig selects the faults a Reader injects. The zero value injects
// nothing (a transparent wrapper).
type ReaderConfig struct {
	// Seed drives every random choice; the same seed over the same input
	// produces the same corrupted byte stream.
	Seed uint64
	// BitFlipEvery flips one random bit in roughly every N delivered bytes
	// (an expected rate, randomized per flip). 0 disables.
	BitFlipEvery int
	// CorruptFrom/CorruptLen, when CorruptLen > 0, overwrite that byte
	// window of the stream with seeded garbage — a deterministic "burst"
	// corruption for tests that need to know exactly what was damaged.
	CorruptFrom int64
	CorruptLen  int
	// SkipFrom/SkipLen, when SkipLen > 0, cut that byte window out of the
	// stream entirely (records lose their framing, the classic mid-file
	// truncation).
	SkipFrom int64
	SkipLen  int
	// TruncateAt ends the stream (clean io.EOF) after N bytes. 0 disables.
	TruncateAt int64
	// ShortReads caps every Read at 1 byte, exercising io.ReadFull
	// resumption paths. Off by default.
	ShortReads bool
	// ErrAfter makes Read return ErrInjected once N bytes were delivered.
	// 0 disables.
	ErrAfter int64
	// StallEvery sleeps StallFor once per N delivered bytes (0 disables) —
	// a slow-producer simulation for watchdog/timeout paths.
	StallEvery int
	StallFor   time.Duration
}

// Reader applies ReaderConfig faults to an underlying reader. Not safe for
// concurrent use (like the readers it wraps).
type Reader struct {
	r   io.Reader
	cfg ReaderConfig
	rng *rng

	off      int64 // bytes delivered to the caller (post-skip stream offset)
	src      int64 // bytes consumed from the underlying reader
	nextFlip int64
	stallAt  int64
}

// NewReader wraps r with fault injection.
func NewReader(r io.Reader, cfg ReaderConfig) *Reader {
	fr := &Reader{r: r, cfg: cfg, rng: newRNG(cfg.Seed)}
	if cfg.BitFlipEvery > 0 {
		fr.nextFlip = int64(fr.rng.intn(2*cfg.BitFlipEvery) + 1)
	}
	if cfg.StallEvery > 0 {
		fr.stallAt = int64(cfg.StallEvery)
	}
	return fr
}

func (fr *Reader) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	if fr.cfg.TruncateAt > 0 && fr.off >= fr.cfg.TruncateAt {
		return 0, io.EOF
	}
	if fr.cfg.ErrAfter > 0 && fr.off >= fr.cfg.ErrAfter {
		return 0, ErrInjected
	}
	if fr.cfg.ShortReads {
		p = p[:1]
	}
	// Bound the read so fault windows land exactly where configured.
	limit := int64(len(p))
	clamp := func(boundary int64) {
		if boundary > fr.off && boundary-fr.off < limit {
			limit = boundary - fr.off
		}
	}
	if fr.cfg.TruncateAt > 0 {
		clamp(fr.cfg.TruncateAt)
	}
	if fr.cfg.ErrAfter > 0 {
		clamp(fr.cfg.ErrAfter)
	}

	// Skip window: consume-and-discard when the source cursor enters it.
	if fr.cfg.SkipLen > 0 && fr.src >= fr.cfg.SkipFrom && fr.src < fr.cfg.SkipFrom+int64(fr.cfg.SkipLen) {
		if err := fr.discard(fr.cfg.SkipFrom + int64(fr.cfg.SkipLen) - fr.src); err != nil {
			return 0, err
		}
	} else if fr.cfg.SkipLen > 0 && fr.src < fr.cfg.SkipFrom {
		if fr.cfg.SkipFrom-fr.src < limit {
			limit = fr.cfg.SkipFrom - fr.src
		}
	}

	n, err := fr.r.Read(p[:limit])
	fr.src += int64(n)
	fr.corrupt(p[:n])
	fr.off += int64(n)
	fr.maybeStall()
	return n, err
}

// discard consumes n bytes from the underlying reader without delivering
// them.
func (fr *Reader) discard(n int64) error {
	var scratch [512]byte
	for n > 0 {
		chunk := int64(len(scratch))
		if n < chunk {
			chunk = n
		}
		m, err := fr.r.Read(scratch[:chunk])
		fr.src += int64(m)
		n -= int64(m)
		if err != nil {
			return err
		}
	}
	return nil
}

// corrupt applies the burst window and randomized bit flips to a delivered
// chunk, using delivered-stream offsets so faults are stable regardless of
// read sizing.
func (fr *Reader) corrupt(p []byte) {
	if fr.cfg.CorruptLen > 0 {
		from, to := fr.cfg.CorruptFrom, fr.cfg.CorruptFrom+int64(fr.cfg.CorruptLen)
		for i := range p {
			if off := fr.off + int64(i); off >= from && off < to {
				p[i] = byte(fr.rng.next())
			}
		}
	}
	if fr.cfg.BitFlipEvery > 0 {
		for i := range p {
			if fr.off+int64(i)+1 == fr.nextFlip {
				p[i] ^= 1 << fr.rng.intn(8)
				fr.nextFlip += int64(fr.rng.intn(2*fr.cfg.BitFlipEvery) + 1)
			}
		}
	}
}

func (fr *Reader) maybeStall() {
	if fr.cfg.StallEvery <= 0 {
		return
	}
	for fr.off >= fr.stallAt {
		time.Sleep(fr.cfg.StallFor)
		fr.stallAt += int64(fr.cfg.StallEvery)
	}
}

// WriterConfig selects the faults a Writer injects. The zero value injects
// nothing.
type WriterConfig struct {
	// FailAfter makes Write return ErrInjected once N bytes were accepted;
	// the failing Write itself accepts the bytes up to the boundary and
	// reports a short write with the error (the torn-write shape). 0
	// disables.
	FailAfter int64
	// FailAlways makes every Write fail immediately (a dead disk).
	FailAlways bool
	// ShortWrites splits every Write into 1-byte underlying writes,
	// exercising partial-write handling. Data is unchanged.
	ShortWrites bool
}

// Writer applies WriterConfig faults to an underlying writer.
type Writer struct {
	w   io.Writer
	cfg WriterConfig
	off int64
}

// NewWriter wraps w with fault injection.
func NewWriter(w io.Writer, cfg WriterConfig) *Writer {
	return &Writer{w: w, cfg: cfg}
}

// Written returns how many bytes the writer has accepted.
func (fw *Writer) Written() int64 { return fw.off }

func (fw *Writer) Write(p []byte) (int, error) {
	if fw.cfg.FailAlways {
		return 0, ErrInjected
	}
	limit := len(p)
	failing := false
	if fw.cfg.FailAfter > 0 {
		if fw.off >= fw.cfg.FailAfter {
			return 0, ErrInjected
		}
		if remaining := fw.cfg.FailAfter - fw.off; int64(limit) > remaining {
			limit = int(remaining)
			failing = true
		}
	}
	n, err := fw.write(p[:limit])
	fw.off += int64(n)
	if err == nil && failing {
		err = ErrInjected
	}
	return n, err
}

func (fw *Writer) write(p []byte) (int, error) {
	if !fw.cfg.ShortWrites {
		return fw.w.Write(p)
	}
	total := 0
	for total < len(p) {
		n, err := fw.w.Write(p[total : total+1])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
