package lbdetect

import (
	"net/netip"
	"testing"
	"time"

	"ipd/internal/core"
	"ipd/internal/flow"
	"ipd/internal/trafficgen"
)

var t0 = time.Unix(1_600_000_000, 0).UTC()

func rec(src, dst string, router flow.RouterID) flow.Record {
	return recAt(t0, src, dst, router)
}

func recAt(ts time.Time, src, dst string, router flow.RouterID) flow.Record {
	return flow.Record{
		Ts:  ts,
		Src: netip.MustParseAddr(src),
		Dst: netip.MustParseAddr(dst),
		In:  flow.Ingress{Router: router, Iface: 1},
	}
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.SrcBits = 24
	cfg.DstBits = 24
	cfg.MinPairFlows = 4
	cfg.MinPairs = 2
	return cfg
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.SrcBits = 0 },
		func(c *Config) { c.DstBits = 33 },
		func(c *Config) { c.MinPairFlows = 1 },
		func(c *Config) { c.MinPairs = 0 },
		func(c *Config) { c.BalancedShare = 0.5 },
		func(c *Config) { c.BalancedShare = 1 },
		func(c *Config) { c.VoteShare = 0 },
		func(c *Config) { c.MinAlternations = 0 },
		func(c *Config) { c.MinCoMinutes = 0 },
		func(c *Config) { c.MaxPairs = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Error(err)
	}
}

func TestDetectsLoadBalancing(t *testing.T) {
	d, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Load-balanced source 10.0.0.0/24: every (src,dst) pair alternates
	// between routers 5 and 6.
	for pair := 0; pair < 4; pair++ {
		dst := netip.AddrFrom4([4]byte{100, 64, byte(pair), 1}).String()
		for i := 0; i < 8; i++ {
			r := flow.RouterID(5 + i%2)
			// Flows spread across minutes: both routers co-occur in each.
			d.Observe(recAt(t0.Add(time.Duration(i/2)*time.Minute), "10.0.0.7", dst, r))
		}
	}
	// Single-homed source 20.0.0.0/24: each pair sticks to one router.
	for pair := 0; pair < 4; pair++ {
		dst := netip.AddrFrom4([4]byte{100, 64, byte(pair), 1}).String()
		for i := 0; i < 8; i++ {
			d.Observe(rec("20.0.0.7", dst, 9))
		}
	}
	groups := d.Groups()
	if len(groups) != 1 {
		t.Fatalf("groups = %+v", groups)
	}
	g := groups[0]
	if len(g.Routers) != 2 || g.Routers[0] != 5 || g.Routers[1] != 6 {
		t.Errorf("routers = %v", g.Routers)
	}
	if len(g.SrcUnits) != 1 || g.SrcUnits[0] != netip.MustParsePrefix("10.0.0.0/24") {
		t.Errorf("src units = %v", g.SrcUnits)
	}
}

func TestCDNStyleMappingNotFlagged(t *testing.T) {
	d, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Different source units use different routers (CDN mapping), but each
	// (src,dst) pair is single-router: no LB.
	for unit := 0; unit < 4; unit++ {
		src := netip.AddrFrom4([4]byte{10, 0, byte(unit), 1}).String()
		router := flow.RouterID(1 + unit%2)
		for pair := 0; pair < 4; pair++ {
			dst := netip.AddrFrom4([4]byte{100, 64, byte(pair), 1}).String()
			for i := 0; i < 8; i++ {
				d.Observe(rec(src, dst, router))
			}
		}
	}
	if groups := d.Groups(); len(groups) != 0 {
		t.Errorf("CDN-style mapping flagged as LB: %+v", groups)
	}
}

func TestIgnoresRecordsWithoutDst(t *testing.T) {
	d, _ := New(testConfig())
	d.Observe(flow.Record{Ts: t0, Src: netip.MustParseAddr("10.0.0.1"), In: flow.Ingress{Router: 1, Iface: 1}})
	if d.TrackedPairs() != 0 {
		t.Error("record without destination must not create pair state")
	}
}

func TestMaxPairsBound(t *testing.T) {
	cfg := testConfig()
	cfg.MaxPairs = 2
	d, _ := New(cfg)
	for i := 0; i < 5; i++ {
		dst := netip.AddrFrom4([4]byte{100, 64, byte(i), 1}).String()
		d.Observe(rec("10.0.0.1", dst, 1))
	}
	if d.TrackedPairs() != 2 {
		t.Errorf("tracked = %d, want 2", d.TrackedPairs())
	}
	if d.DroppedPairs() != 3 {
		t.Errorf("dropped = %d, want 3", d.DroppedPairs())
	}
}

func TestMapperFoldsGroups(t *testing.T) {
	groups := []Group{{Routers: []flow.RouterID{5, 6}}}
	next := func(in flow.Ingress) flow.Ingress {
		if in.Iface == 2 { // pretend 1 and 2 are a LAG
			in.Iface = 1
		}
		return in
	}
	m := NewMapper(groups, next)
	// Both LB routers fold to the synthetic (5, 0).
	if got := m.Logical(flow.Ingress{Router: 6, Iface: 3}); got != (flow.Ingress{Router: 5, Iface: 0}) {
		t.Errorf("fold = %v", got)
	}
	if got := m.Logical(flow.Ingress{Router: 5, Iface: 1}); got != (flow.Ingress{Router: 5, Iface: 0}) {
		t.Errorf("fold = %v", got)
	}
	// Unrelated routers pass through (after next).
	if got := m.Logical(flow.Ingress{Router: 9, Iface: 2}); got != (flow.Ingress{Router: 9, Iface: 1}) {
		t.Errorf("passthrough = %v", got)
	}
	// Nil next works.
	m2 := NewMapper(groups, nil)
	if got := m2.Logical(flow.Ingress{Router: 9, Iface: 2}); got != (flow.Ingress{Router: 9, Iface: 2}) {
		t.Errorf("identity = %v", got)
	}
}

// TestEndToEndWithScenario runs the detector on the synthetic scenario and
// verifies it finds exactly the load-balanced AS, then shows that feeding
// the engine through the resulting mapper makes that AS's space
// classifiable — the §5.8 future-work behaviour.
func TestEndToEndWithScenario(t *testing.T) {
	scn, err := trafficgen.NewScenario(trafficgen.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	var lbAS *trafficgen.AS
	for _, a := range scn.ASes {
		if a.LoadBalanced {
			lbAS = a
			break
		}
	}
	if lbAS == nil {
		t.Fatal("no LB AS in scenario")
	}

	gen := trafficgen.GenConfig{FlowsPerMinute: 8000, NoiseFraction: 0.002, Seed: 1, Diurnal: false}
	start := scn.Start.Add(20 * time.Hour)
	var records []flow.Record
	if err := scn.Stream(start, start.Add(40*time.Minute), gen, func(r flow.Record) bool {
		records = append(records, r)
		return true
	}); err != nil {
		t.Fatal(err)
	}

	// Step 1 (the paper's incident): run IPD without LB handling; the
	// balanced space stays unclassifiable.
	residueCfg := core.DefaultConfig()
	residueCfg.NCidrFactor4 = 0.01
	residueCfg.NCidrFloor = 4
	residueCfg.Mapper = scn.Topo
	residueEng, err := core.NewEngine(residueCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range records {
		residueEng.Feed(r)
	}
	residueEng.ForceCycle()
	residueTable := residueEng.LookupTable()

	// Step 2: point the detector at the unclassifiable residue only.
	det, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range records {
		if _, _, mapped := residueTable.Lookup(r.Src); !mapped {
			det.Observe(r)
		}
	}
	groups := det.Groups()
	if len(groups) == 0 {
		t.Fatal("detector found no LB groups")
	}
	wantRouters := map[flow.RouterID]bool{
		lbAS.Links[0].Router: true,
		lbAS.Links[1].Router: true,
	}
	foundLB := false
	for _, g := range groups {
		match := len(g.Routers) == 2 && wantRouters[g.Routers[0]] && wantRouters[g.Routers[1]]
		if match {
			foundLB = true
			// Flagged units must belong to the LB AS.
			for _, u := range g.SrcUnits {
				owner, ok := scn.ASOf(u.Addr())
				if !ok || owner != lbAS {
					t.Errorf("flagged unit %v belongs to %v, not the LB AS", u, owner)
				}
			}
		} else {
			// Residue filtering keeps transient remap windows out of the
			// evidence; anything else flagged here is a real bug.
			t.Errorf("unexpected LB group %+v", g)
		}
	}
	if !foundLB {
		t.Fatalf("the LB AS's router pair was not detected; groups = %+v", groups)
	}

	// Engine runs: without the mapper the LB space stays unmapped; with it,
	// the space classifies.
	mappedFraction := func(mapper core.IngressMapper) float64 {
		cfg := core.DefaultConfig()
		cfg.NCidrFactor4 = 0.01
		cfg.NCidrFloor = 4
		cfg.Mapper = mapper
		eng, err := core.NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range records {
			eng.Feed(r)
		}
		eng.ForceCycle()
		table := eng.LookupTable()
		hits, total := 0, 0
		for _, r := range records[len(records)-20000:] {
			owner, ok := scn.ASOf(r.Src)
			if !ok || owner != lbAS {
				continue
			}
			total++
			if _, _, ok := table.Lookup(r.Src); ok {
				hits++
			}
		}
		if total == 0 {
			t.Fatal("no LB AS flows in the tail")
		}
		return float64(hits) / float64(total)
	}

	without := mappedFraction(scn.Topo)
	with := mappedFraction(NewMapper(groups, scn.Topo.Logical))
	if without > 0.3 {
		t.Errorf("without detection, LB space should be mostly unmapped; got %.2f", without)
	}
	if with < 0.8 {
		t.Errorf("with detection, LB space should classify; got %.2f", with)
	}
	if with <= without {
		t.Errorf("detection did not help: %.2f -> %.2f", without, with)
	}
}
