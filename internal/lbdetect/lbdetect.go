// Package lbdetect implements the extension the paper sketches in §5.8 and
// its conclusion but deliberately leaves out of the deployed IPD:
// detecting router-level load balancing "by tracking the (source,
// destination) IP address pairs".
//
// The deployed algorithm cannot classify prefixes whose neighbor balances
// flows across two routers (the share per router stays ≈ 0.5 < q at every
// split depth). The distinguishing signal, as the paper observes, requires
// destinations: with CDN-style mapping, one (source, destination) pair
// always enters through one router, while with router-level load balancing
// the *same* pair alternates between routers flow by flow.
//
// The Detector therefore keeps a bounded sample of (source unit,
// destination unit) pairs and counts per-pair ingress routers and
// router-to-router alternations. Source units whose pairs are predominantly
// multi-router with frequent alternation are flagged, and agreeing units
// are aggregated into LB groups. A Mapper can fold a group's routers into
// one logical ingress, which restores classifiability — the quadratic-state
// trade-off the paper describes is made explicit here via the MaxPairs
// bound.
//
// Intended usage mirrors the paper's operational incident: IPD first fails
// to classify the load-balanced space (ranges stay mixed at cidr_max), and
// the detector is then pointed at that *unclassifiable residue* — feed it
// only records whose source has no LPM mapping. Running it over all traffic
// also works but requires the source aggregation to be at least as fine as
// the neighbors' mapping granularity to avoid mistaking fine-grained CDN
// mappings for flow-level balancing.
package lbdetect

import (
	"fmt"
	"net/netip"
	"sort"

	"ipd/internal/flow"
	"ipd/internal/netaddr"
)

// Config bounds and tunes the detector.
type Config struct {
	// SrcBits aggregates sources. It must be at least as fine as the
	// neighbors' mapping granularity (i.e. cidr_max, default /28), or
	// fine-grained CDN mappings inside one source unit masquerade as
	// balancing. DstBits aggregates destinations (default /12).
	SrcBits int
	DstBits int
	// MinPairFlows is the minimum flows a (src, dst) pair needs before it
	// votes (default 6).
	MinPairFlows int
	// MinPairs is the minimum voting pairs a source unit needs before it
	// can be flagged (default 4).
	MinPairs int
	// BalancedShare is the per-pair dominant-router share at or below
	// which the pair votes "balanced" (default 0.8: a pair whose flows
	// split ≤80/20 across routers is not single-homed).
	BalancedShare float64
	// VoteShare is the fraction of voting pairs that must be balanced to
	// flag the source unit (default 0.7).
	VoteShare float64
	// MinAlternations is the minimum number of router-to-router switches a
	// pair must show (in arrival order) to vote balanced; in addition, at
	// least a third of the pair's flows must alternate (default 4).
	MinAlternations int
	// MinCoMinutes is the number of distinct minutes in which the pair saw
	// two or more routers. This is the decisive discriminator: per-flow
	// load balancing makes the routers co-occur within the same minute
	// constantly, while sequential remaps (a CDN moving the block between
	// epochs) and stray noise flows almost never do (default 2).
	MinCoMinutes int
	// MaxPairs bounds the tracked (src, dst) state — the quadratic-memory
	// trade-off of §5.8 (default 1<<20). New pairs beyond the bound are
	// ignored.
	MaxPairs int
}

// DefaultConfig returns the defaults described above.
func DefaultConfig() Config {
	return Config{
		SrcBits:         28, // match cidr_max: finer than any mapping unit
		DstBits:         12,
		MinPairFlows:    8,
		MinPairs:        1,
		BalancedShare:   0.8,
		VoteShare:       0.7,
		MinAlternations: 4,
		MinCoMinutes:    2,
		MaxPairs:        1 << 20,
	}
}

func (c Config) validate() error {
	if c.SrcBits < 1 || c.SrcBits > 32 || c.DstBits < 1 || c.DstBits > 32 {
		return fmt.Errorf("lbdetect: src/dst bits out of range: %d/%d", c.SrcBits, c.DstBits)
	}
	if c.MinPairFlows < 2 {
		return fmt.Errorf("lbdetect: MinPairFlows %d must be >= 2", c.MinPairFlows)
	}
	if c.MinPairs < 1 {
		return fmt.Errorf("lbdetect: MinPairs %d must be >= 1", c.MinPairs)
	}
	if !(c.BalancedShare > 0.5 && c.BalancedShare < 1) {
		return fmt.Errorf("lbdetect: BalancedShare %v must be in (0.5, 1)", c.BalancedShare)
	}
	if !(c.VoteShare > 0 && c.VoteShare <= 1) {
		return fmt.Errorf("lbdetect: VoteShare %v must be in (0, 1]", c.VoteShare)
	}
	if c.MinAlternations < 1 {
		return fmt.Errorf("lbdetect: MinAlternations %d must be >= 1", c.MinAlternations)
	}
	if c.MinCoMinutes < 1 {
		return fmt.Errorf("lbdetect: MinCoMinutes %d must be >= 1", c.MinCoMinutes)
	}
	if c.MaxPairs < 1 {
		return fmt.Errorf("lbdetect: MaxPairs %d must be >= 1", c.MaxPairs)
	}
	return nil
}

type pairKey struct {
	src, dst netaddr.Key
}

type pairState struct {
	perRouter    map[flow.RouterID]int
	total        int
	last         flow.RouterID
	alternations int

	// minute-co-occurrence tracking
	curMinute   int64
	minuteFirst flow.RouterID
	minuteMulti bool
	coMinutes   int
}

// Detector accumulates (source, destination) pair evidence.
type Detector struct {
	cfg     Config
	pairs   map[pairKey]*pairState
	dropped int
}

// New returns a detector for cfg.
func New(cfg Config) (*Detector, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Detector{cfg: cfg, pairs: make(map[pairKey]*pairState)}, nil
}

// Observe folds one flow record; records without a destination are ignored
// (pairs are the whole point).
func (d *Detector) Observe(rec flow.Record) {
	if !rec.Src.IsValid() || !rec.Dst.IsValid() {
		return
	}
	sp, ok1 := netaddr.Mask(rec.Src, d.cfg.SrcBits)
	dp, ok2 := netaddr.Mask(rec.Dst, d.cfg.DstBits)
	if !ok1 || !ok2 {
		return
	}
	k := pairKey{src: netaddr.KeyOf(sp), dst: netaddr.KeyOf(dp)}
	st := d.pairs[k]
	if st == nil {
		if len(d.pairs) >= d.cfg.MaxPairs {
			d.dropped++
			return
		}
		st = &pairState{perRouter: make(map[flow.RouterID]int)}
		d.pairs[k] = st
	}
	if st.total > 0 && rec.In.Router != st.last {
		st.alternations++
	}
	st.last = rec.In.Router
	minute := rec.Ts.Unix() / 60
	switch {
	case st.total == 0 || minute != st.curMinute:
		if st.total > 0 && st.minuteMulti {
			st.coMinutes++
		}
		st.curMinute = minute
		st.minuteFirst = rec.In.Router
		st.minuteMulti = false
	case rec.In.Router != st.minuteFirst:
		st.minuteMulti = true
	}
	st.perRouter[rec.In.Router]++
	st.total++
}

// coMinutesTotal includes the still-open minute.
func (st *pairState) coMinutesTotal() int {
	if st.minuteMulti {
		return st.coMinutes + 1
	}
	return st.coMinutes
}

// DroppedPairs reports pairs ignored due to the MaxPairs bound.
func (d *Detector) DroppedPairs() int { return d.dropped }

// TrackedPairs reports the live pair-state size (the §5.8 memory cost).
func (d *Detector) TrackedPairs() int { return len(d.pairs) }

// Group is one detected load-balancing group: a set of routers sharing the
// given source units' flows.
type Group struct {
	// Routers is the sorted router set (>= 2).
	Routers []flow.RouterID
	// SrcUnits are the flagged source prefixes, sorted.
	SrcUnits []netip.Prefix
}

// Groups evaluates the evidence: per source unit, pairs with enough flows
// vote; units where the balanced vote passes VoteShare are flagged, and
// flagged units with the same router set merge into one group.
func (d *Detector) Groups() []Group {
	type verdict struct {
		balanced, voting int
		routers          map[flow.RouterID]bool
	}
	bySrc := make(map[netaddr.Key]*verdict)
	for k, st := range d.pairs {
		if st.total < d.cfg.MinPairFlows {
			continue
		}
		v := bySrc[k.src]
		if v == nil {
			v = &verdict{routers: make(map[flow.RouterID]bool)}
			bySrc[k.src] = v
		}
		v.voting++
		top := 0
		for r, c := range st.perRouter {
			if c > top {
				top = c
			}
			_ = r
		}
		if len(st.perRouter) >= 2 && st.alternations >= d.cfg.MinAlternations &&
			3*st.alternations >= st.total &&
			st.coMinutesTotal() >= d.cfg.MinCoMinutes &&
			float64(top)/float64(st.total) <= d.cfg.BalancedShare {
			v.balanced++
			for r := range st.perRouter {
				v.routers[r] = true
			}
		}
	}

	byRouters := make(map[string]*Group)
	for src, v := range bySrc {
		if v.voting < d.cfg.MinPairs {
			continue
		}
		if float64(v.balanced)/float64(v.voting) < d.cfg.VoteShare {
			continue
		}
		routers := make([]flow.RouterID, 0, len(v.routers))
		for r := range v.routers {
			routers = append(routers, r)
		}
		sort.Slice(routers, func(i, j int) bool { return routers[i] < routers[j] })
		if len(routers) < 2 {
			continue
		}
		sig := fmt.Sprint(routers)
		g := byRouters[sig]
		if g == nil {
			g = &Group{Routers: routers}
			byRouters[sig] = g
		}
		g.SrcUnits = append(g.SrcUnits, src.Prefix())
	}
	out := make([]Group, 0, len(byRouters))
	for _, g := range byRouters {
		sort.Slice(g.SrcUnits, func(i, j int) bool {
			return netaddr.KeyOf(g.SrcUnits[i]).Less(netaddr.KeyOf(g.SrcUnits[j]))
		})
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Routers[0] < out[j].Routers[0] })
	return out
}

// Mapper folds the routers of detected groups into one logical ingress (the
// group's lowest router, interface 0 — a synthetic "router bundle"), and
// delegates everything else to next (nil = identity). Feeding the engine
// through this mapper makes load-balanced prefixes classifiable, the §5.8
// future-work behaviour.
type Mapper struct {
	next   func(flow.Ingress) flow.Ingress
	folded map[flow.RouterID]flow.RouterID
}

// NewMapper builds a mapper from detected groups over an optional next
// mapper (e.g. the topology's LAG folding).
func NewMapper(groups []Group, next func(flow.Ingress) flow.Ingress) *Mapper {
	m := &Mapper{next: next, folded: make(map[flow.RouterID]flow.RouterID)}
	for _, g := range groups {
		canon := g.Routers[0]
		for _, r := range g.Routers {
			m.folded[r] = canon
		}
	}
	return m
}

// Logical implements core.IngressMapper.
func (m *Mapper) Logical(in flow.Ingress) flow.Ingress {
	if m.next != nil {
		in = m.next(in)
	}
	if canon, ok := m.folded[in.Router]; ok {
		return flow.Ingress{Router: canon, Iface: 0}
	}
	return in
}
