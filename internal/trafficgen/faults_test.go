package trafficgen

import (
	"net/netip"
	"testing"
	"time"

	"ipd/internal/flow"
	"ipd/internal/netflow"
)

func faultRecord(router flow.RouterID, ts time.Time, i int) flow.Record {
	return flow.Record{
		Ts:      ts,
		Src:     netip.AddrFrom4([4]byte{10, byte(router), byte(i >> 8), byte(i)}),
		In:      flow.Ingress{Router: router, Iface: 1},
		Bytes:   500,
		Packets: 1,
	}
}

func TestRecordFaultsDeterministic(t *testing.T) {
	start := time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)
	spec := FaultSpec{
		Seed:    7,
		Loss:    map[flow.RouterID]float64{2: 0.3},
		Skew:    map[flow.RouterID]time.Duration{4: 10 * time.Minute},
		Silence: map[flow.RouterID]Window{9: {From: time.Minute, To: 3 * time.Minute}},
	}
	run := func() (kept, dropped int, skewed, silenced bool) {
		filter, err := RecordFaults(spec, start)
		if err != nil {
			t.Fatal(err)
		}
		for m := 0; m < 5; m++ {
			ts := start.Add(time.Duration(m) * time.Minute)
			for i := 0; i < 200; i++ {
				for _, r := range []flow.RouterID{1, 2, 4, 9} {
					out, ok := filter(faultRecord(r, ts, i))
					if !ok {
						dropped++
						if r == 9 && m >= 1 && m < 3 {
							silenced = true
						}
						if r != 2 && r != 9 {
							t.Fatalf("router %d lost a record without a loss fault", r)
						}
						continue
					}
					kept++
					if r == 4 {
						if out.Ts.Sub(ts) != 10*time.Minute {
							t.Fatalf("router 4 record not skewed: %v", out.Ts)
						}
						skewed = true
					} else if !out.Ts.Equal(ts) {
						t.Fatalf("router %d timestamp rewritten without a skew fault", r)
					}
				}
			}
		}
		return
	}
	k1, d1, skewed, silenced := run()
	k2, d2, _, _ := run()
	if k1 != k2 || d1 != d2 {
		t.Fatalf("fault filter not deterministic: %d/%d vs %d/%d", k1, d1, k2, d2)
	}
	if !skewed || !silenced {
		t.Fatalf("faults not exercised: skewed=%v silenced=%v", skewed, silenced)
	}
	// Router 2 loses roughly 30% of 1000 records; routers 9 silences 2 of 5
	// minutes (400 records). Everything else survives.
	lossDrops := d1 - 400
	if lossDrops < 200 || lossDrops > 400 {
		t.Fatalf("router 2 dropped %d of 1000 records, want ~300", lossDrops)
	}
}

func TestRecordFaultsValidation(t *testing.T) {
	if _, err := RecordFaults(FaultSpec{Loss: map[flow.RouterID]float64{1: 1.5}}, time.Time{}); err == nil {
		t.Fatal("loss fraction 1.5 accepted")
	}
	if _, err := RecordFaults(FaultSpec{Silence: map[flow.RouterID]Window{1: {From: time.Minute, To: time.Minute}}}, time.Time{}); err == nil {
		t.Fatal("empty silence window accepted")
	}
}

func TestV5PackerFaults(t *testing.T) {
	start := time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)
	spec := FaultSpec{
		Seed:    11,
		Loss:    map[flow.RouterID]float64{2: 0.5},
		Skew:    map[flow.RouterID]time.Duration{4: 10 * time.Minute},
		Silence: map[flow.RouterID]Window{9: {From: 0, To: time.Hour}},
	}
	type dg struct {
		router flow.RouterID
		d      *netflow.Datagram
	}
	var got []dg
	p, err := NewV5Packer(spec, start, func(r flow.RouterID, b []byte, _ time.Time) {
		d, err := netflow.Decode(b)
		if err != nil {
			t.Fatalf("packer emitted an undecodable datagram: %v", err)
		}
		got = append(got, dg{r, d})
	})
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 10; m++ {
		ts := start.Add(time.Duration(m) * time.Minute)
		for i := 0; i < 60; i++ {
			for _, r := range []flow.RouterID{1, 2, 4, 9} {
				if err := p.Add(faultRecord(r, ts, i)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}

	perRouter := map[flow.RouterID][]*netflow.Datagram{}
	for _, g := range got {
		perRouter[g.router] = append(perRouter[g.router], g.d)
	}
	if len(perRouter[9]) != 0 {
		t.Fatalf("silent router 9 emitted %d datagrams", len(perRouter[9]))
	}
	// Router 1 is clean: 600 records = 20 full datagrams, contiguous sequence.
	r1 := perRouter[1]
	if len(r1) != 20 {
		t.Fatalf("router 1 emitted %d datagrams, want 20", len(r1))
	}
	next := uint32(0)
	for _, d := range r1 {
		if d.Header.FlowSequence != next {
			t.Fatalf("router 1 sequence %d, want contiguous %d", d.Header.FlowSequence, next)
		}
		next += uint32(len(d.Records))
	}
	// Router 2 loses ~half its datagrams but the survivors' sequences still
	// account for every packed record: gaps are visible, records are not
	// resequenced.
	r2 := perRouter[2]
	if len(r2) < 4 || len(r2) > 16 {
		t.Fatalf("router 2 emitted %d of 20 datagrams, want roughly half", len(r2))
	}
	gapSeen := false
	next = 0
	for _, d := range r2 {
		if d.Header.FlowSequence > next {
			gapSeen = true
		} else if d.Header.FlowSequence < next {
			t.Fatalf("router 2 sequence went backwards: %d after %d", d.Header.FlowSequence, next)
		}
		next = d.Header.FlowSequence + uint32(len(d.Records))
	}
	if !gapSeen {
		t.Fatal("router 2 emitted no sequence gap despite datagram loss")
	}
	// Router 4's header clock runs 10 minutes fast.
	for _, d := range perRouter[4] {
		et := d.Header.ExportTime()
		if et.Before(start.Add(10 * time.Minute)) {
			t.Fatalf("router 4 export time %v not skewed forward", et)
		}
	}
	if p.Dropped == 0 || p.Emitted != len(got) {
		t.Fatalf("counters emitted=%d dropped=%d, got %d datagrams", p.Emitted, p.Dropped, len(got))
	}

	// Determinism: a second identical run drops the same datagrams.
	var got2 int
	p2, err := NewV5Packer(spec, start, func(flow.RouterID, []byte, time.Time) { got2++ })
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 10; m++ {
		ts := start.Add(time.Duration(m) * time.Minute)
		for i := 0; i < 60; i++ {
			for _, r := range []flow.RouterID{1, 2, 4, 9} {
				if err := p2.Add(faultRecord(r, ts, i)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := p2.Flush(); err != nil {
		t.Fatal(err)
	}
	if got2 != len(got) || p2.Dropped != p.Dropped {
		t.Fatalf("packer not deterministic: %d/%d vs %d/%d emitted/dropped",
			got2, p2.Dropped, len(got), p.Dropped)
	}
}
