package trafficgen

import (
	"fmt"
	"sort"
	"time"

	"ipd/internal/flow"
	"ipd/internal/netflow"
)

// Window is a half-open [From, To) interval of offsets from the stream start.
type Window struct {
	From time.Duration
	To   time.Duration
}

func (w Window) contains(d time.Duration) bool { return d >= w.From && d < w.To }

// FaultSpec describes deterministic per-router exporter faults layered on top
// of a generated stream. The same seed and input stream always produce the
// same faults, so degraded scenarios replay bit-for-bit.
//
// Three fault classes mirror what the exphealth tracker detects:
//
//   - Loss drops a fraction of the router's output AFTER sequence numbers are
//     assigned (datagram packing) or per record (trace filtering), so the
//     receiver books a sequence gap.
//   - Skew shifts the router's export clock; record timestamps (trace mode)
//     or datagram headers (packer mode) carry the shifted time.
//   - Silence suppresses all output from the router inside the window
//     without advancing sequence numbers — the exporter looks down, and on
//     resume no retroactive loss is booked.
type FaultSpec struct {
	// Seed drives the loss coin flips. Zero is a valid seed.
	Seed uint64
	// Loss maps routers to a drop fraction in [0, 1).
	Loss map[flow.RouterID]float64
	// LossWindow optionally bounds a router's loss fault; routers in Loss
	// but absent here lose records for the whole run.
	LossWindow map[flow.RouterID]Window
	// Skew maps routers to an export-clock offset.
	Skew map[flow.RouterID]time.Duration
	// SkewWindow optionally bounds a router's skew fault; routers in Skew
	// but absent here run fast (or slow) for the whole run.
	SkewWindow map[flow.RouterID]Window
	// Silence maps routers to the window during which they emit nothing.
	Silence map[flow.RouterID]Window
}

// lossAt reports the router's drop fraction at the given stream offset.
func (s FaultSpec) lossAt(r flow.RouterID, off time.Duration) float64 {
	p, ok := s.Loss[r]
	if !ok || p <= 0 {
		return 0
	}
	if w, ok := s.LossWindow[r]; ok && !w.contains(off) {
		return 0
	}
	return p
}

// skewAt reports the router's clock offset at the given stream offset.
func (s FaultSpec) skewAt(r flow.RouterID, off time.Duration) time.Duration {
	d, ok := s.Skew[r]
	if !ok || d == 0 {
		return 0
	}
	if w, ok := s.SkewWindow[r]; ok && !w.contains(off) {
		return 0
	}
	return d
}

// Empty reports whether the spec injects no faults at all.
func (s FaultSpec) Empty() bool {
	return len(s.Loss) == 0 && len(s.Skew) == 0 && len(s.Silence) == 0
}

func (s FaultSpec) validate() error {
	for r, p := range s.Loss {
		if p < 0 || p >= 1 {
			return fmt.Errorf("trafficgen: loss fraction %g for router %d outside [0, 1)", p, r)
		}
	}
	for name, m := range map[string]map[flow.RouterID]Window{
		"silence": s.Silence, "loss": s.LossWindow, "skew": s.SkewWindow,
	} {
		for r, w := range m {
			if w.To <= w.From || w.From < 0 {
				return fmt.Errorf("trafficgen: %s window %v-%v for router %d is empty or negative", name, w.From, w.To, r)
			}
		}
	}
	return nil
}

// RecordFaults returns a record-level fault filter for trace generation
// (flowgen). The filter returns the possibly rewritten record and whether it
// survives. It must be called in stream order: loss draws consume a seeded
// RNG, so the same input sequence yields the same drops.
func RecordFaults(spec FaultSpec, start time.Time) (func(flow.Record) (flow.Record, bool), error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	rng := newSplitMix(spec.Seed ^ 0x0fa117ed)
	return func(rec flow.Record) (flow.Record, bool) {
		off := rec.Ts.Sub(start)
		if w, ok := spec.Silence[rec.In.Router]; ok && w.contains(off) {
			return rec, false
		}
		if p := spec.lossAt(rec.In.Router, off); p > 0 && rng.float() < p {
			return rec, false
		}
		if d := spec.skewAt(rec.In.Router, off); d != 0 {
			rec.Ts = rec.Ts.Add(d)
		}
		return rec, true
	}, nil
}

// V5Packer packs flow records into per-router NetFlow v5 datagrams with real
// FlowSequence accounting and injects the spec's faults at the datagram
// layer, the way a broken export path would:
//
//   - lost datagrams advance the sequence but are never emitted, so the
//     collector books the gap;
//   - silent windows emit nothing and do not advance the sequence;
//   - skewed clocks shift the header export time only — record content and
//     sequencing are untouched.
//
// Emission order is deterministic: datagrams flush in record-arrival order,
// and Flush drains leftovers sorted by router.
type V5Packer struct {
	spec  FaultSpec
	start time.Time
	rng   *splitMix
	emit  func(router flow.RouterID, payload []byte, at time.Time)
	feeds map[flow.RouterID]*packFeed

	// Emitted and Dropped count datagrams after fault injection.
	Emitted int
	Dropped int
}

type packFeed struct {
	seq     uint32
	pending []netflow.Record
	at      time.Time
}

// NewV5Packer builds a packer that hands finished datagrams to emit.
func NewV5Packer(spec FaultSpec, start time.Time, emit func(router flow.RouterID, payload []byte, at time.Time)) (*V5Packer, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if emit == nil {
		return nil, fmt.Errorf("trafficgen: V5Packer needs an emit callback")
	}
	return &V5Packer{
		spec:  spec,
		start: start,
		rng:   newSplitMix(spec.Seed ^ 0x0fa117ed),
		emit:  emit,
		feeds: make(map[flow.RouterID]*packFeed),
	}, nil
}

// Add buffers one record onto its router's feed, flushing a full datagram
// when MaxRecords accumulate. Records inside a silence window vanish.
func (p *V5Packer) Add(rec flow.Record) error {
	router := rec.In.Router
	if w, ok := p.spec.Silence[router]; ok && w.contains(rec.Ts.Sub(p.start)) {
		return nil
	}
	r, err := netflow.FromFlow(rec)
	if err != nil {
		return err
	}
	f := p.feeds[router]
	if f == nil {
		f = &packFeed{}
		p.feeds[router] = f
	}
	if len(f.pending) == 0 {
		f.at = rec.Ts
	}
	f.pending = append(f.pending, r)
	if len(f.pending) >= netflow.MaxRecords {
		return p.flush(router, f)
	}
	return nil
}

// Flush drains every feed's partial datagram, in router order.
func (p *V5Packer) Flush() error {
	routers := make([]flow.RouterID, 0, len(p.feeds))
	for r := range p.feeds {
		routers = append(routers, r)
	}
	sort.Slice(routers, func(i, j int) bool { return routers[i] < routers[j] })
	for _, r := range routers {
		if err := p.flush(r, p.feeds[r]); err != nil {
			return err
		}
	}
	return nil
}

func (p *V5Packer) flush(router flow.RouterID, f *packFeed) error {
	n := len(f.pending)
	if n == 0 {
		return nil
	}
	off := f.at.Sub(p.start)
	at := f.at.Add(p.spec.skewAt(router, off))
	d := netflow.Datagram{
		Header: netflow.Header{
			UnixSecs:     uint32(at.Unix()),
			UnixNsecs:    uint32(at.Nanosecond()),
			FlowSequence: f.seq,
		},
		Records: f.pending,
	}
	b, err := d.Encode()
	if err != nil {
		return err
	}
	// The sequence advances whether or not the datagram survives: that is
	// exactly how in-flight loss looks to the collector.
	f.seq += uint32(n)
	f.pending = f.pending[:0]
	if pr := p.spec.lossAt(router, off); pr > 0 && p.rng.float() < pr {
		p.Dropped++
		return nil
	}
	p.Emitted++
	p.emit(router, b, f.at)
	return nil
}
