package trafficgen

import (
	"math"
	"net/netip"
	"testing"
	"time"

	"ipd/internal/flow"
	"ipd/internal/topology"
)

func testScenario(t testing.TB) *Scenario {
	t.Helper()
	s, err := NewScenario(DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSpecValidation(t *testing.T) {
	spec := DefaultSpec()
	spec.ContentASes = 3
	if _, err := NewScenario(spec); err == nil {
		t.Error("too few content ASes should fail")
	}
	spec = DefaultSpec()
	spec.Tier1Peers = -1
	if _, err := NewScenario(spec); err == nil {
		t.Error("negative tier1 peers should fail")
	}
	spec = DefaultSpec()
	spec.Start = time.Time{}
	if _, err := NewScenario(spec); err == nil {
		t.Error("zero start should fail")
	}
}

func TestScenarioShape(t *testing.T) {
	s := testScenario(t)
	if len(s.ASes) != 36 {
		t.Fatalf("ASes = %d", len(s.ASes))
	}
	if got := len(s.Tier1Peers()); got != 16 {
		t.Errorf("tier-1 peers = %d, want 16", got)
	}
	// Weights sum to ~1 and are declining for the top of the list.
	sum := 0.0
	for _, a := range s.ASes {
		sum += a.Weight
		if len(a.Links) == 0 {
			t.Errorf("%s has no links", a.Name)
		}
		if len(a.Prefixes) == 0 {
			t.Errorf("%s has no prefixes", a.Name)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum = %v", sum)
	}
	top5 := 0.0
	for _, a := range s.Top(5) {
		top5 += a.Weight
	}
	if math.Abs(top5-0.52) > 1e-9 {
		t.Errorf("TOP5 weight = %v, want 0.52", top5)
	}
	top20 := 0.0
	for _, a := range s.Top(20) {
		top20 += a.Weight
	}
	if math.Abs(top20-0.80) > 1e-9 {
		t.Errorf("TOP20 weight = %v, want 0.80", top20)
	}
	// AS prefix spaces are disjoint: every prefix maps back to its AS.
	for _, a := range s.ASes {
		for _, p := range a.Prefixes {
			got, ok := s.ASOf(p.Addr())
			if !ok || got != a {
				t.Errorf("ASOf(%v) = %v, want %s", p, got, a.Name)
			}
		}
	}
	if _, ok := s.ASByNumber(s.ASes[0].ASN); !ok {
		t.Error("ASByNumber missed")
	}
	if _, ok := s.ASByNumber(1); ok {
		t.Error("unknown ASN should miss")
	}
}

func TestGroundTruthDeterminism(t *testing.T) {
	s1 := testScenario(t)
	s2 := testScenario(t)
	ts := s1.Start.Add(26 * time.Hour)
	for _, a := range s1.ASes[:8] {
		addr := a.Prefixes[0].Addr().Next()
		in1, ok1 := s1.Ingress(addr, ts, 7)
		in2, ok2 := s2.Ingress(addr, ts, 7)
		if ok1 != ok2 || in1 != in2 {
			t.Errorf("%s: %v/%v vs %v/%v", a.Name, in1, ok1, in2, ok2)
		}
	}
	if _, ok := s1.Ingress(netip.MustParseAddr("250.1.2.3"), ts, 0); ok {
		t.Error("address outside all ASes should miss")
	}
}

func TestGroundTruthUsesASLinks(t *testing.T) {
	s := testScenario(t)
	ts := s.Start.Add(3 * time.Hour)
	for _, a := range s.ASes {
		if a.Tier1 {
			continue // violations may divert
		}
		linkSet := make(map[flow.Ingress]bool)
		for _, l := range a.Links {
			linkSet[l] = true
		}
		for _, m := range s.Maintenance {
			linkSet[m.Replacement] = true
		}
		for ui := 0; ui < 20; ui++ {
			addr := a.Prefixes[ui%len(a.Prefixes)].Addr()
			in, ok := s.Ingress(addr, ts, uint64(ui))
			if !ok {
				t.Fatalf("%s: no ingress", a.Name)
			}
			if !linkSet[in] {
				t.Errorf("%s: ingress %v not among the AS's links", a.Name, in)
			}
		}
	}
}

func TestMaintenanceOverride(t *testing.T) {
	s := testScenario(t)
	m := s.Maintenance[0]
	as1 := s.ASes[0]
	// survey counts how many AS1 units map to the target and replacement
	// interfaces at ts, sampling units spread across each prefix so many
	// mapping blocks are covered.
	survey := func(ts time.Time) (target, replacement int) {
		for _, p := range as1.Prefixes {
			bits := as1.UnitBits
			if bits < p.Bits() {
				bits = p.Bits()
			}
			total := uint64(1) << uint(bits-p.Bits())
			stride := total / 200
			if stride == 0 {
				stride = 1
			}
			for u := uint64(0); u < total; u += stride {
				addr := nthUnitAddr(p, bits, u)
				if !addr.IsValid() {
					break
				}
				in, ok := s.Ingress(addr, ts, 0)
				if !ok {
					continue
				}
				switch in {
				case m.Target:
					target++
				case m.Replacement:
					replacement++
				}
			}
		}
		return
	}
	// Note: AS1 remap epochs may roll at the window boundary, so target
	// unit counts are not conserved across it; the invariants are about
	// the replacement interface and the partial nature of the swap.
	beforeT, beforeR := survey(m.From.Add(-time.Minute))
	if beforeT == 0 {
		t.Fatal("no AS1 units map to the maintenance target before the window")
	}
	if beforeR != 0 {
		t.Fatalf("replacement interface carries traffic before maintenance (%d units)", beforeR)
	}
	duringT, duringR := survey(m.From.Add(10 * time.Minute))
	if duringR == 0 {
		t.Error("no units moved to the replacement interface during maintenance")
	}
	// The swap is partial (Fraction < 1): the bulk keeps entering the
	// target, which is what keeps the IPD classification alive (§5.1.2).
	if duringT < duringR {
		t.Errorf("partial maintenance moved the majority: target=%d repl=%d", duringT, duringR)
	}
	afterT, afterR := survey(m.To.Add(time.Hour))
	if afterT == 0 || afterR != 0 {
		t.Errorf("after maintenance: target=%d replacement=%d", afterT, afterR)
	}
	if !m.Covers(m.From) || m.Covers(m.To) {
		t.Error("Covers boundary semantics")
	}
}

// nthUnitAddr returns the base address of the n-th unit of size bits in p,
// or an invalid addr when out of range.
func nthUnitAddr(p netip.Prefix, bits int, n uint64) netip.Addr {
	if n >= (uint64(1) << uint(bits-p.Bits())) {
		return netip.Addr{}
	}
	step := uint64(1) << uint(32-bits)
	a4 := p.Masked().Addr().As4()
	base := uint64(a4[0])<<24 | uint64(a4[1])<<16 | uint64(a4[2])<<8 | uint64(a4[3])
	base += n * step
	return netip.AddrFrom4([4]byte{byte(base >> 24), byte(base >> 16), byte(base >> 8), byte(base)})
}

func TestLoadBalancedASSplitsFlows(t *testing.T) {
	s := testScenario(t)
	var lb *AS
	for _, a := range s.ASes {
		if a.LoadBalanced {
			lb = a
			break
		}
	}
	if lb == nil {
		t.Fatal("no load-balanced AS in the default scenario")
	}
	addr := lb.Prefixes[0].Addr()
	ts := s.Start.Add(time.Hour)
	seen := make(map[flow.Ingress]int)
	for salt := uint64(0); salt < 200; salt++ {
		in, ok := s.Ingress(addr, ts, salt)
		if !ok {
			t.Fatal("no ingress")
		}
		seen[in]++
	}
	if len(seen) != 2 {
		t.Fatalf("LB ingresses = %v, want 2 distinct", seen)
	}
	for in, c := range seen {
		if c < 50 {
			t.Errorf("LB skew: %v only %d/200", in, c)
		}
	}
}

func TestViolationTrend(t *testing.T) {
	s := testScenario(t)
	// Before the violation regime nothing diverts.
	if got := s.ViolationRateAt(s.Start); got != 0 {
		t.Errorf("rate at start = %v", got)
	}
	early := s.ViolationRateAt(s.Start.Add(6 * 30 * 24 * time.Hour)) // ~month 6
	mid := s.ViolationRateAt(s.Start.Add(24 * 30 * 24 * time.Hour))  // ~month 24
	late := s.ViolationRateAt(s.Start.Add(40 * 30 * 24 * time.Hour)) // ~month 40
	if early <= 0 {
		t.Fatalf("early rate = %v", early)
	}
	if math.Abs(mid/early-1.5) > 1e-9 {
		t.Errorf("mid/early = %v, want 1.5", mid/early)
	}
	if math.Abs(late/early-2.0) > 1e-9 {
		t.Errorf("late/early = %v, want 2.0", late/early)
	}
	// Measured diverted fraction matches the scheduled rate.
	tier1 := s.Tier1Peers()[0]
	ts := s.Start.Add(10 * 30 * 24 * time.Hour)
	diverted, total := 0, 0
	for _, p := range tier1.Prefixes {
		for u := uint64(0); u < 50; u++ {
			addr := nthUnitAddr(p, tier1.UnitBits, u)
			if !addr.IsValid() {
				break
			}
			in, ok := s.Ingress(addr, ts, 0)
			if !ok {
				continue
			}
			total++
			if in == tier1.ViolationVia { // diverted
				diverted++
			}
		}
	}
	frac := float64(diverted) / float64(total)
	if frac < 0.01 || frac > 0.25 {
		t.Errorf("diverted fraction = %v (n=%d), want around 0.09", frac, total)
	}
	// Violating traffic enters via a transit (non-peering) link.
	if got := s.LinkClassOf(tier1.ViolationVia); got != topology.LinkTransit {
		t.Errorf("violation link class = %v", got)
	}
}

func TestStreamCalibration(t *testing.T) {
	s := testScenario(t)
	cfg := DefaultGenConfig()
	cfg.FlowsPerMinute = 2000
	cfg.Diurnal = false
	start := s.Start
	end := start.Add(30 * time.Minute)
	byAS := make(map[string]int)
	total := 0
	var lastTs time.Time
	err := s.Stream(start, end, cfg, func(r flow.Record) bool {
		if !r.Valid() {
			t.Fatal("invalid record generated")
		}
		if r.Ts.Before(start) || !r.Ts.Before(end) {
			t.Fatalf("record ts %v outside window", r.Ts)
		}
		if r.Ts.Before(lastTs.Truncate(time.Minute)) {
			t.Fatal("records regressed by more than a minute")
		}
		lastTs = r.Ts
		a, ok := s.ASOf(r.Src)
		if !ok {
			t.Fatalf("record src %v outside AS space", r.Src)
		}
		byAS[a.Name]++
		total++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if total < 50000 {
		t.Fatalf("total = %d", total)
	}
	top5 := byAS["AS1"] + byAS["AS2"] + byAS["AS3"] + byAS["AS4"] + byAS["AS5"]
	share := float64(top5) / float64(total)
	if share < 0.46 || share > 0.58 {
		t.Errorf("TOP5 share = %v, want ~0.52", share)
	}
}

func TestStreamDiurnal(t *testing.T) {
	s := testScenario(t)
	cfg := DefaultGenConfig()
	cfg.FlowsPerMinute = 1000
	count := func(h int) int {
		start := s.Start.Add(time.Duration(h) * time.Hour)
		n := 0
		if err := s.Stream(start, start.Add(time.Hour), cfg, func(flow.Record) bool { n++; return true }); err != nil {
			t.Fatal(err)
		}
		return n
	}
	peak, trough := count(20), count(8)
	if float64(peak) < 1.5*float64(trough) {
		t.Errorf("peak %d vs trough %d: diurnal swing too small", peak, trough)
	}
	if f := DiurnalFactor(s.Start.Add(20 * time.Hour)); math.Abs(f-1) > 1e-9 {
		t.Errorf("DiurnalFactor(20h) = %v", f)
	}
	if f := DiurnalFactor(s.Start.Add(8 * time.Hour)); math.Abs(f-0.3) > 1e-9 {
		t.Errorf("DiurnalFactor(8h) = %v", f)
	}
}

func TestStreamValidation(t *testing.T) {
	s := testScenario(t)
	end := s.Start.Add(time.Minute)
	if err := s.Stream(s.Start, end, GenConfig{FlowsPerMinute: 0}, nil); err == nil {
		t.Error("zero rate should fail")
	}
	if err := s.Stream(s.Start, end, GenConfig{FlowsPerMinute: 10, NoiseFraction: 1}, nil); err == nil {
		t.Error("noise 1.0 should fail")
	}
	if err := s.Stream(end, s.Start, DefaultGenConfig(), nil); err == nil {
		t.Error("end before start should fail")
	}
	// Early stop.
	n := 0
	if err := s.Stream(s.Start, s.Start.Add(time.Hour), DefaultGenConfig(), func(flow.Record) bool {
		n++
		return n < 10
	}); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Errorf("early stop after %d", n)
	}
}

func TestStreamDeterminism(t *testing.T) {
	s := testScenario(t)
	cfg := DefaultGenConfig()
	cfg.FlowsPerMinute = 500
	get := func() []flow.Record {
		recs, err := s.Records(s.Start, s.Start.Add(5*time.Minute), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return recs
	}
	a, b := get(), get()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestBGPTableShape(t *testing.T) {
	s := testScenario(t)
	tb := s.BGPTable(s.Start.Add(24 * time.Hour))
	if tb.NumRoutes() == 0 {
		t.Fatal("empty table")
	}
	counts := tb.NextHopCounts(nil)
	n1, n5plus := 0, 0
	for _, c := range counts {
		if c < 1 || c > 12 {
			t.Fatalf("next-hop count %d out of band", c)
		}
		if c == 1 {
			n1++
		}
		if c > 5 {
			n5plus++
		}
	}
	f1 := float64(n1) / float64(len(counts))
	f5 := float64(n5plus) / float64(len(counts))
	// Fig 3 calibration: ~20% single next-hop, ~60% more than five.
	if f1 < 0.08 || f1 > 0.35 {
		t.Errorf("single next-hop fraction = %v, want ~0.2", f1)
	}
	if f5 < 0.45 || f5 > 0.75 {
		t.Errorf(">5 next-hop fraction = %v, want ~0.6", f5)
	}
	// Candidate sets are built starting from the AS's own attachment
	// routers, so at least one of them appears for every prefix (BGP may
	// legitimately announce fewer candidates than the AS has traffic
	// links — that mismatch is the paper's point).
	a := s.ASes[0]
	asRouters := make(map[flow.RouterID]bool)
	for _, rr := range uniqueRouters(a.Links) {
		asRouters[rr] = true
	}
	for _, p := range a.Prefixes {
		r, ok := tb.Get(p)
		if !ok {
			t.Fatalf("route for AS1 prefix %v missing", p)
		}
		foundAS := false
		for _, h := range r.NextHops {
			if asRouters[h] {
				foundAS = true
			}
		}
		if !foundAS {
			t.Errorf("prefix %v: no AS1 router among next hops %v", p, r.NextHops)
		}
	}
}

func TestBGPSymmetryCalibration(t *testing.T) {
	s := testScenario(t)
	// Measured per-class symmetry should land near the configured
	// SymmetryProb: tier-1 ~0.91, TOP5 ~0.77.
	measure := func(ases []*AS) float64 {
		sym, tot := 0, 0
		for day := 0; day < 40; day++ {
			ts := s.Start.Add(time.Duration(day) * 24 * time.Hour)
			tb := s.BGPTable(ts)
			for _, a := range ases {
				for _, p := range a.Prefixes {
					r, ok := tb.Get(p)
					if !ok {
						continue
					}
					dom, ok := s.DominantIngress(p, ts)
					if !ok {
						continue
					}
					tot++
					if r.Best == dom.Router {
						sym++
					}
				}
			}
		}
		return float64(sym) / float64(tot)
	}
	t1 := measure(s.Tier1Peers())
	if t1 < 0.8 || t1 > 1 {
		t.Errorf("tier-1 symmetry = %v, want ~0.91", t1)
	}
	top5 := measure(s.Top(5))
	if top5 < 0.6 || top5 > 0.92 {
		t.Errorf("TOP5 symmetry = %v, want ~0.77", top5)
	}
	if t1 <= top5 {
		t.Errorf("tier-1 symmetry (%v) should exceed TOP5 (%v)", t1, top5)
	}
}

func TestBGPDumps(t *testing.T) {
	s := testScenario(t)
	ds, err := s.BGPDumps(s.Start, s.Start.Add(3*24*time.Hour), 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 4 {
		t.Fatalf("dumps = %d", ds.Len())
	}
	tb, ok := ds.At(s.Start.Add(36 * time.Hour))
	if !ok || !tb.At.Equal(s.Start.Add(24*time.Hour)) {
		t.Errorf("At(36h) = %v", tb.At)
	}
}

func TestProfileString(t *testing.T) {
	for _, p := range []Profile{ProfileCDN, ProfileCloud, ProfileEyeball, ProfileTransit, Profile(99)} {
		if p.String() == "" {
			t.Error("empty profile string")
		}
	}
}

func TestZipfIndexBounds(t *testing.T) {
	for _, n := range []int{1, 2, 10} {
		for _, u := range []float64{0, 0.25, 0.5, 0.999999} {
			if idx := zipfIndex(u, n); idx < 0 || idx >= n {
				t.Errorf("zipfIndex(%v, %d) = %d", u, n, idx)
			}
		}
	}
	if zipfIndex(0.1, 0) != 0 {
		t.Error("zipfIndex with n=0")
	}
	// Rank 0 must dominate.
	hits := make([]int, 5)
	r := newSplitMix(3)
	for i := 0; i < 10000; i++ {
		hits[zipfIndex(r.float(), 5)]++
	}
	if hits[0] < hits[1] || hits[1] < hits[2] {
		t.Errorf("zipf not declining: %v", hits)
	}
}

func TestIPv6DualStack(t *testing.T) {
	s := testScenario(t)
	// AS1, AS2, AS4 are dual-stacked.
	dual := 0
	for _, a := range s.ASes {
		if len(a.Prefixes6) > 0 {
			dual++
			if a.UnitBits6 != 48 {
				t.Errorf("%s UnitBits6 = %d", a.Name, a.UnitBits6)
			}
			for _, p := range a.Prefixes6 {
				got, ok := s.ASOf(p.Addr())
				if !ok || got != a {
					t.Errorf("ASOf(%v) = %v", p, got)
				}
			}
		}
	}
	if dual != 3 {
		t.Fatalf("dual-stacked ASes = %d, want 3", dual)
	}
	// Ground truth resolves v6 addresses to the AS's links.
	as1 := s.ASes[0]
	ts := s.Start.Add(2 * time.Hour)
	linkSet := map[flow.Ingress]bool{}
	for _, l := range as1.Links {
		linkSet[l] = true
	}
	addr := as1.Prefixes6[0].Addr().Next()
	in, ok := s.Ingress(addr, ts, 0)
	if !ok || !linkSet[in] {
		t.Errorf("v6 ingress = %v ok=%v", in, ok)
	}
	// The stream carries roughly the configured v6 share of dual-stack
	// AS traffic.
	cfg := DefaultGenConfig()
	cfg.FlowsPerMinute = 3000
	cfg.Diurnal = false
	v6, total := 0, 0
	err := s.Stream(s.Start, s.Start.Add(10*time.Minute), cfg, func(r flow.Record) bool {
		total++
		if r.IsIPv6() {
			v6++
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	share := float64(v6) / float64(total)
	// Dual-stack ASes carry 36% of volume; 10% of that is v6 => ~3.6%.
	if share < 0.015 || share > 0.08 {
		t.Errorf("v6 share = %v, want ~0.036", share)
	}
	// BGP announces the v6 prefixes too.
	tb := s.BGPTable(ts)
	if _, ok := tb.Get(as1.Prefixes6[0]); !ok {
		t.Error("v6 prefix missing from BGP table")
	}
}

func TestBEUint64RoundTrip(t *testing.T) {
	r := newSplitMix(5)
	for i := 0; i < 1000; i++ {
		v := r.next()
		var b [8]byte
		putBEUint64(b[:], v)
		if got := beUint64(b[:]); got != v {
			t.Fatalf("round trip %x -> %x", v, got)
		}
	}
}

func TestRandomSource6StaysInPrefix(t *testing.T) {
	s := testScenario(t)
	var dual *AS
	for _, a := range s.ASes {
		if len(a.Prefixes6) > 0 {
			dual = a
			break
		}
	}
	if dual == nil {
		t.Fatal("no dual-stack AS")
	}
	rng := newSplitMix(9)
	ts := s.Start.Add(time.Hour)
	for i := 0; i < 2000; i++ {
		addr := s.randomSource6(dual, ts, rng)
		inside := false
		for _, p := range dual.Prefixes6 {
			if p.Contains(addr) {
				inside = true
				break
			}
		}
		if !inside {
			t.Fatalf("v6 source %v escaped the AS's prefixes %v", addr, dual.Prefixes6)
		}
	}
}

func TestRandomDstBounds(t *testing.T) {
	rng := newSplitMix(11)
	space := netip.MustParsePrefix("100.64.0.0/10")
	for i := 0; i < 5000; i++ {
		d := randomDst(rng)
		if !space.Contains(d) {
			t.Fatalf("dst %v outside %v", d, space)
		}
	}
}

func TestSplitMixDeterminism(t *testing.T) {
	a, b := newSplitMix(1), newSplitMix(1)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("splitmix diverged")
		}
	}
	// float() stays in [0,1).
	r := newSplitMix(2)
	for i := 0; i < 10000; i++ {
		f := r.float()
		if f < 0 || f >= 1 {
			t.Fatalf("float out of range: %v", f)
		}
	}
}

func TestStreamHotspot(t *testing.T) {
	s := testScenario(t)
	cfg := DefaultGenConfig()
	cfg.Diurnal = false
	cfg.FlowsPerMinute = 2000
	cfg.HotFraction = 0.5
	recs, err := s.Records(s.Start, s.Start.Add(2*time.Minute), cfg)
	if err != nil {
		t.Fatal(err)
	}
	hot := s.defaultHotPrefix()
	if !hot.IsValid() {
		t.Fatal("no default hot prefix")
	}
	inHot := 0
	for _, r := range recs {
		if hot.Contains(r.Src.Unmap()) {
			inHot++
		}
	}
	frac := float64(inHot) / float64(len(recs))
	if frac < 0.45 || frac > 0.6 {
		t.Errorf("hot fraction = %v (%d/%d), want ~0.5", frac, inHot, len(recs))
	}

	// An explicit prefix is honored, and hot flows still carry the ground
	// truth ingress the scenario routes them to.
	want := netip.MustParsePrefix(hot.String())
	cfg.HotPrefix = want
	recs2, err := s.Records(s.Start, s.Start.Add(time.Minute), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs2 {
		if !want.Contains(r.Src.Unmap()) {
			continue
		}
		if (r.In == flow.Ingress{}) {
			t.Fatal("hot record carries no ingress")
		}
	}

	// Validation rejects an out-of-range fraction.
	bad := DefaultGenConfig()
	bad.HotFraction = 1
	if err := s.Stream(s.Start, s.Start.Add(time.Minute), bad, nil); err == nil {
		t.Error("HotFraction 1.0 should fail")
	}
}
