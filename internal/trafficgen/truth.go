package trafficgen

import (
	"net/netip"
	"time"

	"ipd/internal/bgp"
	"ipd/internal/flow"
	"ipd/internal/netaddr"
	"ipd/internal/topology"
)

// Ingress returns the ground-truth ingress point for traffic from addr at
// time ts. flowSalt individualizes flows for router-level load balancing
// (pass 0 for the per-unit deterministic view). ok is false for addresses
// outside any AS's space.
//
// The resolution order models reality: violation episodes (traffic handed
// over indirectly) override the AS's own mapping; maintenance windows
// override the mapped interface; router-level load balancing picks per
// flow.
func (s *Scenario) Ingress(addr netip.Addr, ts time.Time, flowSalt uint64) (flow.Ingress, bool) {
	a, ok := s.ASOf(addr)
	if !ok {
		return flow.Ingress{}, false
	}
	unit, ok := netaddr.Mask(addr, a.unitBitsFor(addr))
	if !ok {
		return flow.Ingress{}, false
	}
	uk := unitKey(unit)

	// §5.6: tier-1 units diverted through non-peering links during the
	// violation regime. The affected unit set re-rolls monthly, and its
	// size follows the Fig. 17 growth trend.
	if a.Tier1 && a.ViolationVia != (flow.Ingress{}) {
		month := monthsSince(s.Start, ts)
		if month >= violationStartMonth {
			rate := s.violationRate(month)
			if hashFrac(s.seed, uint64(a.ASN), uk, uint64(month), 0x710a) < rate {
				return a.ViolationVia, true
			}
		}
	}

	// Router-level load balancing: per-flow choice between the first two
	// links (IPD's deliberate blind spot, §5.8).
	if a.LoadBalanced && len(a.Links) >= 2 {
		return a.Links[hash64(s.seed, uk, flowSalt)%2], true
	}

	in := s.baseIngress(a, unit, uk, ts)

	// Maintenance windows move a fraction of the interface's units.
	for _, m := range s.Maintenance {
		if in == m.Target && m.Covers(ts) &&
			hashFrac(s.seed, uk, uint64(m.From.Unix()), 0x3a17) < m.Fraction {
			in = m.Replacement
		}
	}
	return in, true
}

// baseIngress is the AS's own user→ingress mapping for a unit at ts.
//
// Mappings have spatial locality: contiguous *blocks* (BlockBits-sized,
// e.g. /20 regions of /28 units) share one ingress link — the way real
// CDNs map whole user regions to a data center. A small DeviantFraction of
// units inside a block follow their own mapping instead; they are what
// splits some IPD ranges deeper and what produces the residual
// misclassifications of §5.1.2.
func (s *Scenario) baseIngress(a *AS, unit netip.Prefix, uk uint64, ts time.Time) flow.Ingress {
	k := len(a.Links)
	if k == 1 {
		return a.Links[0]
	}
	// Deviant units: unit-granular mapping, era-stable (they sit on their
	// own link for months — their effect on IPD is extra splits and a few
	// persistent misses inside q's error margin, not flapping).
	if a.DeviantFraction > 0 && hashFrac(s.seed, uint64(a.ASN), uk, 0xdef) < a.DeviantFraction {
		phase := hash64(s.seed, uk, 0xdea) % eraMonths
		era := uint64(monthsSince(s.Start, ts)+int(phase)) / eraMonths
		return a.Links[hash64(s.seed, uint64(a.ASN), uk, era, 0xdee)%uint64(k)]
	}
	block, ok := netaddr.Mask(unit.Addr(), a.blockBitsFor(unit.Addr()))
	if !ok {
		block = unit
	}
	bk := unitKey(block)
	// Pinned blocks rarely move: they produce the dominant single-ingress
	// behaviour of §2 ("most prefixes only have one ingress point"). Even
	// pinned mappings drift on a ~18-month era with per-block phase — the
	// secular decline of the Fig. 10 "stable" share (hardly any prefix
	// remains on the same link after ~2.5 years).
	pinned := a.RemapPeriod <= 0 || hashFrac(s.seed, uint64(a.ASN), bk, 0x9191) >= a.RemapFraction
	if pinned {
		phase := hash64(s.seed, bk, 0xe7a) % eraMonths
		era := uint64(monthsSince(s.Start, ts)+int(phase)) / eraMonths
		// Stable mappings concentrate on a per-/12-slot primary link (the
		// way a region homes to its closest data center); the remainder
		// spreads by block hash. This is what gives hypergiant prefixes a
		// dominant ingress (§2) and the higher TOP5 symmetry of §5.5.
		if conc := a.concentration(); conc > 0 {
			slot, ok := netaddr.Mask(unit.Addr(), slotBitsFor(unit.Addr()))
			if ok && hashFrac(s.seed, bk, era, 0xc0c0) < conc {
				return a.Links[hash64(s.seed, uint64(a.ASN), unitKey(slot), era, 0x9111)%uint64(k)]
			}
		}
		return a.Links[hash64(s.seed, uint64(a.ASN), bk, era, 0xba5e)%uint64(k)]
	}
	// Remapping blocks re-roll every RemapPeriod. CDNs additionally
	// consolidate onto fewer ingresses in the low-traffic hours, which is
	// what merges IPD ranges at night (Figs. 11/12).
	epoch := uint64(ts.Unix() / int64(a.RemapPeriod.Seconds()))
	kEff := k
	if a.Profile == ProfileCDN {
		kEff = 1 + int(float64(k-1)*DiurnalFactor(ts)+0.5)
		if kEff > k {
			kEff = k
		}
	}
	// Remapping blocks are also mostly homed to a per-slot primary (which
	// itself re-rolls every epoch — whole user regions move together);
	// only the remainder scatters per block.
	if conc := a.concentration(); conc > 0 {
		slot, ok := netaddr.Mask(unit.Addr(), slotBitsFor(unit.Addr()))
		if ok && hashFrac(s.seed, bk, 0xc1c1) < conc {
			return a.Links[hash64(s.seed, uint64(a.ASN), unitKey(slot), epoch, 0x9122)%uint64(kEff)]
		}
	}
	return a.Links[hash64(s.seed, uint64(a.ASN), bk, epoch, 0x5e1ec7)%uint64(kEff)]
}

// unitBitsFor returns the mapping granularity for addr's family.
func (a *AS) unitBitsFor(addr netip.Addr) int {
	if !addr.Unmap().Is4() {
		return a.UnitBits6
	}
	return a.UnitBits
}

// blockBitsFor is the granularity of the AS's spatially contiguous mapping
// regions: 8 bits coarser than the unit granularity, floored at /12 (IPv4)
// and /40 (IPv6).
func (a *AS) blockBitsFor(addr netip.Addr) int {
	if !addr.Unmap().Is4() {
		b := a.UnitBits6 - 8
		if b < 40 {
			b = 40
		}
		return b
	}
	b := a.UnitBits - 8
	if b < 12 {
		b = 12
	}
	return b
}

// slotBitsFor is the per-family "primary link region" granularity (one
// slot per allocated prefix, roughly).
func slotBitsFor(addr netip.Addr) int {
	if !addr.Unmap().Is4() {
		return 44
	}
	return 12
}

// DominantIngress returns the modal ground-truth ingress over sampled units
// of the prefix at ts — the reference point for BGP symmetry (§5.5 compares
// against the ingress carrying the bulk of the prefix's traffic).
func (s *Scenario) DominantIngress(p netip.Prefix, ts time.Time) (flow.Ingress, bool) {
	if !p.Addr().Is4() {
		return flow.Ingress{}, false
	}
	span := uint64(1) << uint(32-p.Bits())
	const probes = 32
	step := span / probes
	if step == 0 {
		step = 1
	}
	counts := make(map[flow.Ingress]int)
	base := p.Masked().Addr().As4()
	baseU := uint64(base[0])<<24 | uint64(base[1])<<16 | uint64(base[2])<<8 | uint64(base[3])
	for off := uint64(0); off < span; off += step {
		u := baseU + off
		addr := netip.AddrFrom4([4]byte{byte(u >> 24), byte(u >> 16), byte(u >> 8), byte(u)})
		if in, ok := s.Ingress(addr, ts, 0); ok {
			counts[in]++
		}
	}
	var best flow.Ingress
	bestC := 0
	for in, c := range counts {
		if c > bestC || (c == bestC && lessIngress(in, best)) {
			best, bestC = in, c
		}
	}
	return best, bestC > 0
}

// concentration is the share of pinned blocks homed to the per-slot primary
// link, by profile.
func (a *AS) concentration() float64 {
	switch a.Profile {
	case ProfileCloud:
		return 0.85
	case ProfileEyeball:
		return 0.9
	case ProfileTransit:
		return 0.9
	default: // CDN: server selection spreads more of the mapping
		return 0.7
	}
}

const violationStartMonth = 2 // episodes begin ~2 months into the scenario (≈ March 2018)

// eraMonths is the cadence of the slow "even pinned mappings eventually
// move" drift (renumbering, capacity moves, re-homing).
const eraMonths = 18

// presenceFraction is the share of mapping units that actively source
// traffic in any given month; the active set re-rolls monthly. This drives
// the Fig. 10 "matching" plateau (~60-70% of today's mapped space is still
// present weeks later).
const presenceFraction = 0.65

// UnitActive reports whether a mapping unit sources traffic during ts's
// month (address-space churn: users, allocations, and CDN blocks come and
// go).
func (s *Scenario) UnitActive(addr netip.Addr, ts time.Time) bool {
	a, ok := s.ASOf(addr)
	if !ok {
		return false
	}
	unit, ok := netaddr.Mask(addr, a.unitBitsFor(addr))
	if !ok {
		return false
	}
	month := monthsSince(s.Start, ts)
	if month < 0 {
		month = 0
	}
	return hashFrac(s.seed, unitKey(unit), uint64(month), 0xac71) < presenceFraction
}

// monthsSince returns whole 30-day months between start and ts (negative
// clamped to -1).
func monthsSince(start, ts time.Time) int {
	d := ts.Sub(start)
	if d < 0 {
		return -1
	}
	return int(d / (30 * 24 * time.Hour))
}

// violationRate implements the Fig. 17 trend: a ~9% baseline that grows 50%
// from month 20 (≈ Sep 2019) and doubles from month 30 (≈ mid 2020).
func (s *Scenario) violationRate(month int) float64 {
	switch {
	case month < violationStartMonth:
		return 0
	case month < 20:
		return s.violationBase
	case month < 30:
		return s.violationBase * 1.5
	default:
		return s.violationBase * 2
	}
}

// ViolationRateAt exposes the scheduled rate for validation.
func (s *Scenario) ViolationRateAt(ts time.Time) float64 {
	return s.violationRate(monthsSince(s.Start, ts))
}

// BGPTable builds the RIB snapshot at ts. The candidate next-hop set per
// prefix reproduces Fig. 3's dotted curves (≈20% of prefixes with a single
// next hop, ≈60% with more than five), and the selected best path agrees
// with the dominant ingress router with the AS's SymmetryProb — the §5.5
// symmetry targets are inputs here and measured outputs in the evaluation.
func (s *Scenario) BGPTable(ts time.Time) *bgp.Table {
	tb := bgp.NewTable(ts)
	routers := s.Topo.Routers()
	day := uint64(ts.Unix() / 86400)
	for _, a := range s.ASes {
		prefixes := append(append([]netip.Prefix(nil), a.Prefixes...), a.Prefixes6...)
		for pi, p := range prefixes {
			pk := unitKey(p)
			// Candidate count: 20% -> 1, 20% -> 2..5, 60% -> 6..10.
			f := hashFrac(s.seed, pk, 0xc0)
			var want int
			switch {
			case f < 0.2:
				want = 1
			case f < 0.4:
				want = 2 + int(hash64(s.seed, pk, 0xc1)%4)
			default:
				want = 6 + int(hash64(s.seed, pk, 0xc2)%5)
			}
			// Start from the routers the AS is attached to, pad with
			// other border routers (routes learned via other peers).
			seen := make(map[flow.RouterID]bool)
			var hops []flow.RouterID
			for _, l := range a.Links {
				if !seen[l.Router] {
					seen[l.Router] = true
					hops = append(hops, l.Router)
				}
			}
			for i := 0; len(hops) < want && i < 4*len(routers); i++ {
				r := routers[hash64(s.seed, pk, uint64(i), 0xc3)%uint64(len(routers))]
				if !seen[r] {
					seen[r] = true
					hops = append(hops, r)
				}
			}
			// BGP may announce fewer candidates than the AS has traffic
			// links — that mismatch is exactly the paper's point (§3.1
			// "BGP is not an option").
			if len(hops) > want {
				hops = hops[:want]
			}
			// Best path: symmetric with the dominant ingress router with
			// probability SymmetryProb, re-drawn daily.
			best := hops[0]
			dom, ok := s.DominantIngress(p, ts)
			symmetric := ok && hashFrac(s.seed, pk, day, 0x5b) < a.SymmetryProb
			switch {
			case symmetric:
				if !containsRouter(hops, dom.Router) {
					hops[len(hops)-1] = dom.Router
				}
				best = dom.Router
			case ok:
				// Pick a candidate that is NOT the dominant ingress
				// router if one exists.
				for _, h := range hops {
					if h != dom.Router {
						best = h
						break
					}
				}
			}
			_ = pi
			if err := tb.Insert(bgp.Route{Prefix: p, Origin: a.ASN, NextHops: hops, Best: best}); err != nil {
				// Construction is internally consistent; a failure here is
				// a programming error.
				panic(err)
			}
		}
	}
	return tb
}

// BGPDumps builds a dump series covering [start, end] at the given period.
func (s *Scenario) BGPDumps(start, end time.Time, every time.Duration) (*bgp.DumpSeries, error) {
	var ds bgp.DumpSeries
	for ts := start; !ts.After(end); ts = ts.Add(every) {
		if err := ds.Add(s.BGPTable(ts)); err != nil {
			return nil, err
		}
	}
	return &ds, nil
}

func containsRouter(hops []flow.RouterID, r flow.RouterID) bool {
	for _, h := range hops {
		if h == r {
			return true
		}
	}
	return false
}

func uniqueRouters(links []flow.Ingress) []flow.RouterID {
	seen := make(map[flow.RouterID]bool)
	var out []flow.RouterID
	for _, l := range links {
		if !seen[l.Router] {
			seen[l.Router] = true
			out = append(out, l.Router)
		}
	}
	return out
}

// unitKey folds a prefix into a hash word (family-aware).
func unitKey(p netip.Prefix) uint64 {
	addr := p.Addr().Unmap()
	if addr.Is4() {
		a := addr.As4()
		return uint64(a[0])<<32 | uint64(a[1])<<24 | uint64(a[2])<<16 | uint64(a[3])<<8 | uint64(p.Bits())
	}
	b := addr.As16()
	h := uint64(0xcbf29ce484222325)
	for _, x := range b[:8] {
		h = (h ^ uint64(x)) * 0x100000001b3
	}
	for _, x := range b[8:] {
		h = (h ^ uint64(x)) * 0x100000001b3
	}
	return h ^ uint64(p.Bits())<<56 ^ 1<<63
}

// LinkClassOf returns the link class of an ingress per the topology.
func (s *Scenario) LinkClassOf(in flow.Ingress) topology.LinkClass {
	itf, ok := s.Topo.Interface(in)
	if !ok {
		return topology.LinkUnknown
	}
	return itf.Class
}
