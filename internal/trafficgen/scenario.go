// Package trafficgen synthesizes the tier-1 ISP workload that the paper's
// deployment measured: sampled flow records from all border routers with the
// statistical structure the evaluation depends on — a Zipf AS mix (TOP5 ≈
// 52% / TOP20 ≈ 80% of volume, §5.1), diurnal load, CDN user→server
// remapping at fine granularity (§5.3), maintenance events and router-level
// load balancing (§5.1.2/§5.8), indirect-entry episodes for the peering-
// violation study (§5.6), and a BGP view whose announced paths and selected
// egress are deliberately decoupled from actual ingress (§2, §5.5).
//
// Every choice is a deterministic function of (scenario seed, address,
// time), so the ground-truth ingress of any address at any instant can be
// recomputed exactly — this is what stands in for the paper's "compare
// against the original Netflow" validation.
package trafficgen

import (
	"fmt"
	"hash/fnv"
	"math"
	"net/netip"
	"sort"
	"time"

	"ipd/internal/flow"
	"ipd/internal/netaddr"
	"ipd/internal/topology"
	"ipd/internal/trie"
)

// Profile describes an AS's traffic/mapping behaviour.
type Profile uint8

const (
	// ProfileCDN maps users to servers at fine granularity and remaps on a
	// short cadence; mappings consolidate at night (Fig. 12).
	ProfileCDN Profile = iota
	// ProfileCloud is a hyperscaler with stable, coarse mappings.
	ProfileCloud
	// ProfileEyeball is an access network: very stable ingress (the
	// source of the paper's long-stable "elephant ranges", §5.4).
	ProfileEyeball
	// ProfileTransit is a transit/tier-1 backbone with moderately stable
	// ingress.
	ProfileTransit
)

func (p Profile) String() string {
	switch p {
	case ProfileCDN:
		return "cdn"
	case ProfileCloud:
		return "cloud"
	case ProfileEyeball:
		return "eyeball"
	case ProfileTransit:
		return "transit"
	}
	return fmt.Sprintf("Profile(%d)", uint8(p))
}

// AS is one neighbor AS sending traffic into the ISP.
type AS struct {
	// ASN is the AS number (synthetic, 64500+).
	ASN topology.ASN
	// Name is a human label ("AS1".."ASn" in paper order: AS1..AS5 are the
	// TOP5 by volume).
	Name string
	// Profile selects the mapping behaviour.
	Profile Profile
	// Weight is the AS's share of total flow volume; weights over all ASes
	// sum to 1.
	Weight float64
	// Prefixes are the AS's announced (and traffic-sourcing) IPv4
	// prefixes; Prefixes6 the IPv6 ones (empty for v4-only ASes).
	Prefixes  []netip.Prefix
	Prefixes6 []netip.Prefix
	// UnitBits is the granularity of the AS's ground-truth user→ingress
	// mapping (e.g. /28 for a CDN that maps data centers to /28 subnets);
	// UnitBits6 the IPv6 twin (deployment cidr_max6 is /48).
	UnitBits  int
	UnitBits6 int
	// Links are the border interfaces the AS is attached to (its possible
	// legitimate ingress points).
	Links []flow.Ingress
	// RemapPeriod is the cadence at which mapping units re-roll their
	// ingress (0 = static mapping).
	RemapPeriod time.Duration
	// RemapFraction is the fraction of mapping *blocks* that participate
	// in re-rolling (the rest stay pinned to their base ingress).
	RemapFraction float64
	// DeviantFraction is the share of units that ignore their block's
	// mapping and follow a churnier unit-level mapping of their own — the
	// residual-miss source of §5.1.2.
	DeviantFraction float64
	// Tier1 marks settlement-free tier-1 peers (the §5.6 population).
	Tier1 bool
	// LoadBalanced marks router-level load balancing across the first two
	// links: each flow picks one pseudo-randomly. IPD intentionally cannot
	// classify these (§5.8).
	LoadBalanced bool
	// SymmetryProb is the probability that BGP's selected egress router
	// for a prefix coincides with its dominant ingress router (§5.5:
	// tier-1 ≈ 0.91, TOP5 ≈ 0.77, rest lower).
	SymmetryProb float64
	// ViolationVia, for tier-1 ASes, is the non-peering ingress their
	// violating traffic enters through during §5.6 episodes.
	ViolationVia flow.Ingress
}

// Scenario is a fully materialized synthetic world: topology, neighbor
// ASes, ground-truth mapping dynamics, and scheduled events.
type Scenario struct {
	// Topo is the ISP topology (routers, PoPs, bundles, link classes).
	Topo *topology.T
	// ASes in declining volume order (ASes[0] is "AS1").
	ASes []*AS
	// Start is the scenario epoch (events and diurnal phase are relative
	// to it, local time = UTC).
	Start time.Time

	// Maintenance windows (interface traffic temporarily moved).
	Maintenance []Maintenance

	byAddr *trie.Trie[*AS]
	byASN  map[topology.ASN]*AS
	seed   uint64

	// violationBase is the baseline fraction of tier-1 units entering via
	// non-peering links; it grows over time per the Fig. 17 trend.
	violationBase float64
}

// Maintenance models a router/interface maintenance window: traffic that
// would enter via Target enters via Replacement instead (the §5.1.2 "AS1"
// story: bundle interfaces swapped during an upgrade).
type Maintenance struct {
	Target      flow.Ingress
	Replacement flow.Ingress
	From, To    time.Time
	// Fraction is the share of the target's mapping units that are
	// diverted (a partial interface swap, as in the paper's AS1 incident:
	// the bulk of the traffic keeps entering the expected bundle, so the
	// classification survives and the diverted flows stay misses for the
	// whole window).
	Fraction float64
}

// Covers reports whether ts falls inside the window.
func (m Maintenance) Covers(ts time.Time) bool {
	return !ts.Before(m.From) && ts.Before(m.To)
}

// Spec parameterizes scenario construction.
type Spec struct {
	// Topology is the ISP footprint spec.
	Topology topology.Spec
	// Start is the scenario epoch.
	Start time.Time
	// Seed drives every random choice.
	Seed int64
	// ContentASes is the number of non-tier-1 neighbor ASes (>= 5).
	ContentASes int
	// Tier1Peers is the number of settlement-free tier-1 peers (§5.6
	// monitors 16).
	Tier1Peers int
}

// DefaultSpec is the laptop-scale default: 20 content ASes + 16 tier-1
// peers on the default topology, starting 2018-01-01 (the paper's output
// archive begins in 2018).
func DefaultSpec() Spec {
	return Spec{
		Topology:    topology.DefaultSpec(),
		Start:       time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC),
		Seed:        1,
		ContentASes: 20,
		Tier1Peers:  16,
	}
}

// NewScenario materializes a spec.
func NewScenario(spec Spec) (*Scenario, error) {
	if spec.ContentASes < 5 {
		return nil, fmt.Errorf("trafficgen: need >= 5 content ASes, got %d", spec.ContentASes)
	}
	if spec.Tier1Peers < 0 {
		return nil, fmt.Errorf("trafficgen: negative Tier1Peers")
	}
	if spec.Start.IsZero() {
		return nil, fmt.Errorf("trafficgen: zero Start")
	}
	topo, err := topology.Build(spec.Topology)
	if err != nil {
		return nil, err
	}
	s := &Scenario{
		Topo:          topo,
		Start:         spec.Start,
		byAddr:        trie.New[*AS](),
		byASN:         make(map[topology.ASN]*AS),
		seed:          uint64(spec.Seed),
		violationBase: 0.09, // ~9% of tier-1 prefixes enter indirectly (§5.6)
	}
	if err := s.populate(spec); err != nil {
		return nil, err
	}
	return s, nil
}

// asWeights produces the volume shares: AS1..AS5 sum to 0.52 (paper: TOP5 =
// 52%), AS6..AS20 bring the cumulative to 0.80 (TOP20 = 80%), and the
// remainder (including the tier-1 peers) shares the last 0.20.
func asWeights(content, tier1 int) []float64 {
	top5 := []float64{0.16, 0.12, 0.10, 0.08, 0.06}
	weights := append([]float64(nil), top5...)
	// AS6..AS20: declining shares summing to 0.28.
	n620 := 15
	if content < 20 {
		n620 = content - 5
	}
	if n620 > 0 {
		total := 0.0
		raw := make([]float64, n620)
		for i := range raw {
			raw[i] = 1 / float64(i+2)
			total += raw[i]
		}
		for i := range raw {
			weights = append(weights, 0.28*raw[i]/total)
		}
	}
	// Remaining content ASes + tier-1 peers share 0.20.
	rest := content - len(weights) + tier1
	if rest > 0 {
		total := 0.0
		raw := make([]float64, rest)
		for i := range raw {
			raw[i] = 1 / float64(i+3)
			total += raw[i]
		}
		for i := range raw {
			weights = append(weights, 0.20*raw[i]/total)
		}
	}
	return weights
}

func (s *Scenario) populate(spec Spec) error {
	rng := newSplitMix(uint64(spec.Seed) ^ 0xa5a5a5a5)
	ifaces := s.Topo.Interfaces()
	if len(ifaces) < 16 {
		return fmt.Errorf("trafficgen: topology too small (%d interfaces)", len(ifaces))
	}
	weights := asWeights(spec.ContentASes, spec.Tier1Peers)
	nAS := spec.ContentASes + spec.Tier1Peers
	if nAS > 200 {
		return fmt.Errorf("trafficgen: too many ASes (%d), base /8 allocation supports 200", nAS)
	}

	// pickLinks selects n interfaces, preferring distinct routers,
	// deterministically.
	used := make(map[flow.Ingress]bool)
	pickLinks := func(n int, class topology.LinkClass, asn topology.ASN) []flow.Ingress {
		var out []flow.Ingress
		seenRouter := make(map[flow.RouterID]bool)
		for attempt := 0; attempt < 10*len(ifaces) && len(out) < n; attempt++ {
			itf := ifaces[int(rng.next()%uint64(len(ifaces)))]
			if used[itf.In] || seenRouter[itf.In.Router] {
				continue
			}
			used[itf.In] = true
			seenRouter[itf.In.Router] = true
			_ = s.Topo.AttachNeighbor(itf.In, asn, class)
			out = append(out, itf.In)
		}
		// Relax the distinct-router preference if the topology ran out.
		for attempt := 0; attempt < 10*len(ifaces) && len(out) < n; attempt++ {
			itf := ifaces[int(rng.next()%uint64(len(ifaces)))]
			if used[itf.In] {
				continue
			}
			used[itf.In] = true
			_ = s.Topo.AttachNeighbor(itf.In, asn, class)
			out = append(out, itf.In)
		}
		sort.Slice(out, func(i, j int) bool { return lessIngress(out[i], out[j]) })
		return out
	}

	// pickPairedLinks selects `pairs` routers and two interfaces on each.
	pickPairedLinks := func(pairs int, class topology.LinkClass, asn topology.ASN) []flow.Ingress {
		var out []flow.Ingress
		seenRouter := make(map[flow.RouterID]bool)
		for attempt := 0; attempt < 20*len(ifaces) && len(out) < 2*pairs; attempt++ {
			itf := ifaces[int(rng.next()%uint64(len(ifaces)))]
			if used[itf.In] || seenRouter[itf.In.Router] {
				continue
			}
			// Find a free sibling interface on the same router.
			var sib *topology.Interface
			for j := range ifaces {
				cand := ifaces[j]
				if cand.In.Router == itf.In.Router && cand.In != itf.In && !used[cand.In] && cand.Bundle == 0 && itf.Bundle == 0 {
					sib = &ifaces[j]
					break
				}
			}
			if sib == nil {
				continue
			}
			seenRouter[itf.In.Router] = true
			used[itf.In], used[sib.In] = true, true
			_ = s.Topo.AttachNeighbor(itf.In, asn, class)
			_ = s.Topo.AttachNeighbor(sib.In, asn, class)
			out = append(out, itf.In, sib.In)
		}
		sort.Slice(out, func(i, j int) bool { return lessIngress(out[i], out[j]) })
		return out
	}

	for i := 0; i < nAS; i++ {
		asn := topology.ASN(64500 + i)
		a := &AS{
			ASN:    asn,
			Name:   fmt.Sprintf("AS%d", i+1),
			Weight: weights[i],
		}
		tier1Start := spec.ContentASes
		switch {
		case i == 0: // AS1: CDN behind PNI links incl. a bundled router.
			a.Profile = ProfileCDN
			a.UnitBits = 28
			a.RemapPeriod = 30 * time.Minute
			a.RemapFraction = 0.55
			a.DeviantFraction = 0.02
			a.SymmetryProb = 0.80
			// Two routers with two parallel interfaces each: AS1's remap
			// flips land on a sibling interface of the same router, which
			// is why its residual misses are interface misses (§5.1.2).
			a.Links = pickPairedLinks(2, topology.LinkPNI, asn)
		case i == 1: // AS2: stable cloud.
			a.Profile = ProfileCloud
			a.UnitBits = 24
			a.RemapPeriod = 6 * time.Hour
			a.RemapFraction = 0.15
			a.DeviantFraction = 0.01
			a.SymmetryProb = 0.80
			a.Links = pickLinks(3, topology.LinkPNI, asn)
		case i == 2: // AS3: CDN with cross-country mapping churn (PoP misses).
			a.Profile = ProfileCDN
			a.UnitBits = 26
			a.RemapPeriod = 15 * time.Minute
			a.RemapFraction = 0.5
			a.DeviantFraction = 0.05
			a.SymmetryProb = 0.75
			a.Links = pickLinks(6, topology.LinkPNI, asn)
		case i == 3: // AS4: CDN with large prefixes and strong diurnal remaps.
			a.Profile = ProfileCDN
			a.UnitBits = 24
			a.RemapPeriod = time.Hour
			a.RemapFraction = 0.6
			a.DeviantFraction = 0.03
			a.SymmetryProb = 0.75
			a.Links = pickLinks(5, topology.LinkPNI, asn)
		case i == 4: // AS5: stable hypergiant cloud.
			a.Profile = ProfileCloud
			a.UnitBits = 24
			a.RemapPeriod = 12 * time.Hour
			a.RemapFraction = 0.1
			a.DeviantFraction = 0.01
			a.SymmetryProb = 0.7
			a.Links = pickLinks(3, topology.LinkPNI, asn)
		case i < tier1Start: // other content ASes
			if i == 11 {
				// The §5.8 operational incident: a directly connected
				// hypergiant balancing traffic over two routers, which
				// IPD deliberately cannot classify.
				a.Profile = ProfileCloud
				a.UnitBits = 24
				a.LoadBalanced = true
			} else if i%3 == 0 {
				a.Profile = ProfileCDN
				a.UnitBits = 27
				a.RemapPeriod = time.Duration(30+10*(i%5)) * time.Minute
				a.RemapFraction = 0.4
				a.DeviantFraction = 0.02
			} else if i%3 == 1 {
				a.Profile = ProfileEyeball
				a.UnitBits = 20
			} else {
				a.Profile = ProfileCloud
				a.UnitBits = 24
				a.RemapPeriod = 12 * time.Hour
				a.RemapFraction = 0.1
				a.DeviantFraction = 0.01
			}
			a.SymmetryProb = 0.55
			a.Links = pickLinks(3+i%3, topology.LinkTransit, asn)
		default: // tier-1 peers
			a.Profile = ProfileTransit
			a.UnitBits = 20
			a.Tier1 = true
			a.RemapPeriod = 24 * time.Hour
			a.RemapFraction = 0.1
			a.SymmetryProb = 0.91
			a.Links = pickLinks(2+i%2, topology.LinkPublicPeering, asn)
		}
		if len(a.Links) == 0 {
			return fmt.Errorf("trafficgen: no links available for %s", a.Name)
		}
		a.Prefixes = allocPrefixes(i, a.Profile, rng)
		// The hypergiants are dual-stacked (AS1, AS2, AS4): they also
		// announce and source IPv6 (deployment cidr_max6 /48, factor6 24).
		if i == 0 || i == 1 || i == 3 {
			a.UnitBits6 = 48
			a.Prefixes6 = allocPrefixes6(i)
		}
		s.ASes = append(s.ASes, a)
		s.byASN[asn] = a
		for _, p := range a.Prefixes {
			s.byAddr.Insert(p, a)
		}
		for _, p := range a.Prefixes6 {
			s.byAddr.Insert(p, a)
		}
	}

	// Violation paths: each tier-1 peer's violating traffic enters via a
	// transit interface belonging to some *other* AS.
	var transitLinks []flow.Ingress
	for _, itf := range s.Topo.Interfaces() {
		if itf.Class == topology.LinkTransit {
			transitLinks = append(transitLinks, itf.In)
		}
	}
	for _, a := range s.ASes {
		if a.Tier1 && len(transitLinks) > 0 {
			a.ViolationVia = transitLinks[int(hash64(s.seed, uint64(a.ASN))%uint64(len(transitLinks)))]
		}
	}

	// Maintenance: one window on AS1's first link around 11:00 and another
	// around 23:00 of day 1 (the Fig. 8 "AS1" spikes). A small fraction of
	// units — below the q error margin, like the paper's incident — moves
	// to a different interface on the same router, so the classification
	// survives and the moved flows stay interface misses for the whole
	// window.
	as1 := s.ASes[0]
	day1 := s.Start
	// Both parallel interfaces of AS1's first router are touched by the
	// upgrade; their diverted units land on a freshly brought-up port of
	// the same router.
	for _, target := range as1.Links[:2] {
		repl := flow.Ingress{Router: target.Router, Iface: target.Iface + 100}
		// The replacement interface may not exist in the inventory;
		// register it so the topology can still classify it.
		_ = s.Topo.AddInterface(repl, as1.ASN, topology.LinkPNI)
		s.Maintenance = append(s.Maintenance,
			Maintenance{Target: target, Replacement: repl, Fraction: 0.04,
				From: day1.Add(11 * time.Hour), To: day1.Add(11*time.Hour + 45*time.Minute)},
			Maintenance{Target: target, Replacement: repl, Fraction: 0.04,
				From: day1.Add(23 * time.Hour), To: day1.Add(23*time.Hour + 45*time.Minute)},
		)
	}
	return nil
}

// allocPrefixes carves disjoint prefixes for AS index i out of its private
// base /8 (offset from 10.0.0.0/8 by index, wrapping through 10..209).
// Profile selects the size mix: AS4-style CDNs get a few large /12-/15
// prefixes; others get /14-/24.
func allocPrefixes(i int, p Profile, rng *splitMix) []netip.Prefix {
	base := netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(10 + i), 0, 0, 0}), 8)
	var sizes []int
	switch {
	case i == 3: // AS4: large address blocks (/12../15), per §5.1.2
		sizes = []int{12, 13, 14, 15}
	case p == ProfileCDN:
		sizes = []int{14, 16, 18, 20, 22, 24, 24, 24}
	case p == ProfileEyeball:
		sizes = []int{12, 14, 15, 16, 16}
	case p == ProfileCloud:
		sizes = []int{14, 16, 16, 20, 22}
	default: // transit / tier-1
		sizes = []int{14, 16, 16, 18, 20, 22, 24}
	}
	out := make([]netip.Prefix, 0, len(sizes))
	for k, bits := range sizes {
		// Slot k is the k-th /12 inside the base /8 (16 slots available).
		slot := netaddr.NthSubPrefix(base, 12, uint64(k))
		if bits < 12 {
			bits = 12
		}
		out = append(out, netip.PrefixFrom(slot.Addr(), bits))
		_ = rng
	}
	return out
}

// allocPrefixes6 carves disjoint IPv6 prefixes for AS index i inside its
// private /40 of the 2001:db8::/32 documentation block: a /44 and two /48s.
func allocPrefixes6(i int) []netip.Prefix {
	base := [16]byte{0x20, 0x01, 0x0d, 0xb8, byte(i + 1)}
	mk := func(fifth byte, bits int) netip.Prefix {
		b := base
		b[5] = fifth
		return netip.PrefixFrom(netip.AddrFrom16(b), bits)
	}
	return []netip.Prefix{
		mk(0x00, 44), // 2001:db8:XX00::/44
		mk(0x10, 48), // 2001:db8:XX10::/48
		mk(0x20, 48), // 2001:db8:XX20::/48
	}
}

// ASOf returns the AS sourcing addr.
func (s *Scenario) ASOf(addr netip.Addr) (*AS, bool) {
	_, a, ok := s.byAddr.Lookup(addr)
	return a, ok
}

// ASByNumber returns the AS with the given ASN.
func (s *Scenario) ASByNumber(asn topology.ASN) (*AS, bool) {
	a, ok := s.byASN[asn]
	return a, ok
}

// Top returns the first n ASes by volume (the paper's TOP5/TOP20 sets).
func (s *Scenario) Top(n int) []*AS {
	if n > len(s.ASes) {
		n = len(s.ASes)
	}
	return s.ASes[:n]
}

// Tier1Peers returns the tier-1 peer ASes.
func (s *Scenario) Tier1Peers() []*AS {
	var out []*AS
	for _, a := range s.ASes {
		if a.Tier1 {
			out = append(out, a)
		}
	}
	return out
}

func lessIngress(a, b flow.Ingress) bool {
	if a.Router != b.Router {
		return a.Router < b.Router
	}
	return a.Iface < b.Iface
}

// splitMix is a tiny deterministic RNG (SplitMix64) so the generator does
// not depend on math/rand ordering guarantees across Go versions.
type splitMix struct{ state uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{state: seed} }

func (s *splitMix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform float64 in [0, 1).
func (s *splitMix) float() float64 {
	return float64(s.next()>>11) / float64(1<<53)
}

// hash64 mixes the given words with FNV-1a.
func hash64(words ...uint64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, w := range words {
		b[0] = byte(w)
		b[1] = byte(w >> 8)
		b[2] = byte(w >> 16)
		b[3] = byte(w >> 24)
		b[4] = byte(w >> 32)
		b[5] = byte(w >> 40)
		b[6] = byte(w >> 48)
		b[7] = byte(w >> 56)
		h.Write(b[:])
	}
	return h.Sum64()
}

// hashFrac maps the given words to a uniform float in [0, 1).
func hashFrac(words ...uint64) float64 {
	return float64(hash64(words...)>>11) / float64(1<<53)
}

// DiurnalFactor is the paper's diurnal load pattern: volume peaks at 20:00
// (the §5.3.1 "prime time") and bottoms out around 08:00. The factor is in
// [0.1, 1].
func DiurnalFactor(ts time.Time) float64 {
	h := float64(ts.Hour()) + float64(ts.Minute())/60
	return 0.65 + 0.35*math.Cos(2*math.Pi*(h-20)/24)
}
