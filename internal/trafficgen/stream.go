package trafficgen

import (
	"fmt"
	"math"
	"net/netip"
	"sort"
	"time"

	"ipd/internal/flow"
	"ipd/internal/netaddr"
)

// GenConfig parameterizes flow-stream generation.
type GenConfig struct {
	// FlowsPerMinute is the average sampled-flow rate before diurnal
	// modulation (the deployment sees ~32M/min; laptop-scale experiments
	// use 3k-50k).
	FlowsPerMinute int
	// NoiseFraction is the share of flows entering via a random wrong
	// link (spoofed/abnormal traffic the q parameter must absorb).
	NoiseFraction float64
	// Seed individualizes the stream (flow arrivals, per-flow salt) while
	// the *mapping* stays a function of the scenario seed.
	Seed int64
	// Diurnal enables the daily volume pattern (on for realism, off for
	// load tests).
	Diurnal bool
	// IPv6Fraction is the share of a dual-stacked AS's flows sourced from
	// its IPv6 space (v4-only ASes ignore it).
	IPv6Fraction float64
	// HotFraction, when positive, redirects that share of flows to source
	// from HotPrefix — a synthetic elephant aggregate for exercising the
	// workload profiler's heavy-hitter and hot-prefix-alert paths. Ground
	// truth is unaffected: hot flows still enter through the ingress the
	// scenario routes their source to.
	HotFraction float64
	// HotPrefix is the elephant's source aggregate. The zero value picks
	// the first /24 of the first AS's first IPv4 prefix, which is always
	// inside the scenario's routed space.
	HotPrefix netip.Prefix
}

// DefaultGenConfig is suitable for tests and examples.
func DefaultGenConfig() GenConfig {
	return GenConfig{FlowsPerMinute: 5000, NoiseFraction: 0.005, Seed: 1, Diurnal: true, IPv6Fraction: 0.1}
}

func (c GenConfig) validate() error {
	if c.FlowsPerMinute <= 0 {
		return fmt.Errorf("trafficgen: FlowsPerMinute must be positive, got %d", c.FlowsPerMinute)
	}
	if c.NoiseFraction < 0 || c.NoiseFraction >= 1 {
		return fmt.Errorf("trafficgen: NoiseFraction %v out of [0,1)", c.NoiseFraction)
	}
	if c.IPv6Fraction < 0 || c.IPv6Fraction > 1 {
		return fmt.Errorf("trafficgen: IPv6Fraction %v out of [0,1]", c.IPv6Fraction)
	}
	if c.HotFraction < 0 || c.HotFraction >= 1 {
		return fmt.Errorf("trafficgen: HotFraction %v out of [0,1)", c.HotFraction)
	}
	return nil
}

// defaultHotPrefix returns the built-in elephant aggregate: the first /24 of
// the first AS's first IPv4 prefix (or that prefix itself when it is already
// /24 or longer).
func (s *Scenario) defaultHotPrefix() netip.Prefix {
	for _, a := range s.ASes {
		for _, p := range a.Prefixes {
			if p.Bits() >= 24 {
				return p.Masked()
			}
			return netip.PrefixFrom(p.Masked().Addr(), 24)
		}
	}
	return netip.Prefix{}
}

// hotAddr draws a uniform address inside the hot aggregate.
func hotAddr(p netip.Prefix, rng *splitMix) netip.Addr {
	bits := 32
	if p.Addr().Is6() {
		bits = 64 // bound the offset; a /48's low 16 host bits still vary
	}
	span := uint64(1)
	if p.Bits() < bits {
		shift := uint(bits - p.Bits())
		if shift > 32 {
			shift = 32 // keep offsets well inside the prefix
		}
		span = uint64(1) << shift
	}
	return netaddr.NthAddr(p, rng.next()%span)
}

// Stream generates the sampled flow records of [start, end) in timestamp
// order and passes each to fn; generation stops early if fn returns false.
// Records carry the ground-truth ingress (a flow trace *is* ground truth:
// it is captured at the ingress router).
func (s *Scenario) Stream(start, end time.Time, cfg GenConfig, fn func(flow.Record) bool) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	if !end.After(start) {
		return fmt.Errorf("trafficgen: end %v not after start %v", end, start)
	}
	picker := s.newASPicker()
	rng := newSplitMix(uint64(cfg.Seed) ^ 0xfeedface)
	allIfaces := s.Topo.Interfaces()

	hot := cfg.HotPrefix
	if cfg.HotFraction > 0 && !hot.IsValid() {
		hot = s.defaultHotPrefix()
		if !hot.IsValid() {
			return fmt.Errorf("trafficgen: HotFraction set but the scenario has no IPv4 prefix to default HotPrefix from")
		}
	}

	for minute := start.Truncate(time.Minute); minute.Before(end); minute = minute.Add(time.Minute) {
		n := cfg.FlowsPerMinute
		if cfg.Diurnal {
			n = int(float64(n)*DiurnalFactor(minute) + 0.5)
		}
		for i := 0; i < n; i++ {
			ts := minute.Add(time.Duration(rng.next() % uint64(time.Minute)))
			if ts.Before(start) || !ts.Before(end) {
				ts = minute
			}
			a := picker.pick(rng.float())
			var src netip.Addr
			switch {
			case cfg.HotFraction > 0 && rng.float() < cfg.HotFraction:
				src = hotAddr(hot, rng)
			case len(a.Prefixes6) > 0 && cfg.IPv6Fraction > 0 && rng.float() < cfg.IPv6Fraction:
				src = s.randomSource6(a, ts, rng)
			default:
				src = s.randomSource(a, ts, rng)
			}
			salt := rng.next()
			in, ok := s.Ingress(src, ts, salt)
			if !ok {
				continue
			}
			if cfg.NoiseFraction > 0 && rng.float() < cfg.NoiseFraction {
				in = allIfaces[int(rng.next()%uint64(len(allIfaces)))].In
			}
			// LAG behaviour: traffic toward a bundled interface hashes
			// across the bundle's members per flow. IPD folds the members
			// back into one logical ingress (§3.2); disabling that folding
			// is the bundle ablation bench.
			if itf, ok := s.Topo.Interface(in); ok && itf.Bundle != 0 {
				members := s.Topo.BundleMembers(itf.Bundle)
				if len(members) > 1 {
					in = members[int(rng.next()%uint64(len(members)))]
				}
			}
			rec := flow.Record{
				Ts:      ts,
				Src:     src,
				Dst:     randomDst(rng),
				In:      in,
				Bytes:   flowBytes(rng),
				Packets: 1,
			}
			if !fn(rec) {
				return nil
			}
		}
	}
	return nil
}

// Records is Stream collected into a slice (convenience for tests and
// examples; prefer Stream for long horizons).
func (s *Scenario) Records(start, end time.Time, cfg GenConfig) ([]flow.Record, error) {
	var out []flow.Record
	err := s.Stream(start, end, cfg, func(r flow.Record) bool {
		out = append(out, r)
		return true
	})
	return out, err
}

// randomSource draws a source address inside AS a: prefix by Zipf rank,
// unit by a squared-uniform bias (a few units dominate, as CDN server
// blocks do), host uniform inside the unit.
func (s *Scenario) randomSource(a *AS, ts time.Time, rng *splitMix) netip.Addr {
	p := a.Prefixes[zipfIndex(rng.float(), len(a.Prefixes))]
	unitBits := a.UnitBits
	if unitBits < p.Bits() {
		unitBits = p.Bits()
	}
	nUnits := netaddr.SubPrefixCount(p, unitBits)
	hostSpan := uint64(1) << uint(32-unitBits)
	// Retry a few times to find a unit active this month; inactive units
	// source no traffic (address-space churn).
	for attempt := 0; attempt < 8; attempt++ {
		u := uint64(float64(nUnits-1) * rng.float() * rng.float()) // biased to low indices
		unit := netaddr.NthSubPrefix(p, unitBits, u)
		addr := netaddr.NthAddr(unit, rng.next()%hostSpan)
		if s.UnitActive(addr, ts) {
			return addr
		}
	}
	// Fall back to an arbitrary address in the prefix (keeps the stream
	// rate independent of the active fraction).
	span := uint64(1) << uint(32-p.Bits())
	return netaddr.NthAddr(p, rng.next()%span)
}

// randomSource6 draws an IPv6 source inside AS a: prefix by Zipf rank,
// /48 unit biased to low indices, random interface identifier.
func (s *Scenario) randomSource6(a *AS, ts time.Time, rng *splitMix) netip.Addr {
	p := a.Prefixes6[zipfIndex(rng.float(), len(a.Prefixes6))]
	unitBits := a.UnitBits6
	if unitBits < p.Bits() {
		unitBits = p.Bits()
	}
	span := uint64(1) << uint(unitBits-p.Bits())
	for attempt := 0; attempt < 8; attempt++ {
		u := uint64(float64(span-1) * rng.float() * rng.float())
		b := p.Masked().Addr().As16()
		// Write the unit index into bits [p.Bits(), unitBits) of the top
		// 64 bits (unitBits <= 48 < 64, and the masked prefix has zeros
		// there).
		hi := beUint64(b[:8]) | u<<uint(64-unitBits)
		putBEUint64(b[:8], hi)
		// Random interface identifier.
		lo := rng.next()
		putBEUint64(b[8:], lo)
		addr := netip.AddrFrom16(b)
		if s.UnitActive(addr, ts) {
			return addr
		}
	}
	b := p.Masked().Addr().As16()
	putBEUint64(b[8:], rng.next())
	return netip.AddrFrom16(b)
}

func beUint64(b []byte) uint64 {
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}

func putBEUint64(b []byte, v uint64) {
	b[0], b[1], b[2], b[3] = byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32)
	b[4], b[5], b[6], b[7] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
}

// randomDst draws a destination inside the ISP's customer space
// (100.64.0.0/10): a Zipf-lite /24 choice and a uniform host. Destinations
// matter only to the §5.8 load-balancing detector (IPD itself deliberately
// ignores them).
func randomDst(rng *splitMix) netip.Addr {
	unit := uint64(float64(1<<12-1) * rng.float() * rng.float()) // /24 index inside /10... bounded to 4096 units
	host := rng.next() % 256
	v := uint64(100)<<24 | uint64(64)<<16 | unit<<8 | host
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

// zipfIndex maps a uniform u to an index with Zipf(1) weights.
func zipfIndex(u float64, n int) int {
	if n <= 1 {
		return 0
	}
	// Precomputing harmonic sums per call is cheap for small n.
	h := 0.0
	for i := 1; i <= n; i++ {
		h += 1 / float64(i)
	}
	target := u * h
	acc := 0.0
	for i := 1; i <= n; i++ {
		acc += 1 / float64(i)
		if acc >= target {
			return i - 1
		}
	}
	return n - 1
}

// flowBytes draws a flow size: lognormal-ish body with a heavy tail,
// bounded to the uint32 counter the record carries.
func flowBytes(rng *splitMix) uint32 {
	// Box-Muller from two uniforms.
	u1, u2 := rng.float(), rng.float()
	if u1 <= 0 {
		u1 = 1e-12
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	b := math.Exp(7.2 + 1.1*z) // median ~1.3 KB
	if b < 64 {
		b = 64
	}
	if b > 1<<30 {
		b = 1 << 30
	}
	return uint32(b)
}

// asPicker samples ASes by weight via a cumulative table.
type asPicker struct {
	cum  []float64
	ases []*AS
}

func (s *Scenario) newASPicker() *asPicker {
	p := &asPicker{ases: s.ASes}
	total := 0.0
	for _, a := range s.ASes {
		total += a.Weight
	}
	acc := 0.0
	for _, a := range s.ASes {
		acc += a.Weight / total
		p.cum = append(p.cum, acc)
	}
	return p
}

func (p *asPicker) pick(u float64) *AS {
	i := sort.SearchFloat64s(p.cum, u)
	if i >= len(p.ases) {
		i = len(p.ases) - 1
	}
	return p.ases[i]
}
