package exphealth

import (
	"math"
	"testing"
	"time"

	"ipd/internal/flow"
)

var t0 = time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)

// fixedNow pins the tracker's collector clock for deterministic skew math.
func fixedNow(at time.Time) func() time.Time {
	return func() time.Time { return at }
}

func feed(t *testing.T, tr *Tracker, key Key) *feedState {
	t.Helper()
	tr.mu.Lock()
	defer tr.mu.Unlock()
	fs, ok := tr.feeds[key]
	if !ok {
		t.Fatalf("feed %v not tracked", key)
	}
	return fs
}

func TestSequenceGapBooksLoss(t *testing.T) {
	tr := New(Options{Now: fixedNow(t0)})
	r := flow.RouterID(1)
	tr.ObserveNetFlow(r, 0, 30, t0, 0)
	tr.ObserveNetFlow(r, 30, 30, t0, 0) // in order
	tr.ObserveNetFlow(r, 90, 30, t0, 0) // 30 records missing
	fs := feed(t, tr, Key{Proto: ProtoNetFlow, Router: r})
	if fs.lost != 30 {
		t.Fatalf("lost = %d, want 30", fs.lost)
	}
	if fs.restarts != 0 || fs.reordered != 0 {
		t.Fatalf("restarts=%d reordered=%d, want 0/0", fs.restarts, fs.reordered)
	}
}

func TestSequenceWraparound(t *testing.T) {
	tr := New(Options{Now: fixedNow(t0)})
	r := flow.RouterID(2)
	start := uint32(0xFFFFFFF0) // 16 before the wrap
	tr.ObserveNetFlow(r, start, 30, t0, 0)
	// Next expected is start+30 = 14 after wrapping. In-order datagram:
	tr.ObserveNetFlow(r, start+30, 30, t0, 0)
	fs := feed(t, tr, Key{Proto: ProtoNetFlow, Router: r})
	if fs.lost != 0 || fs.restarts != 0 {
		t.Fatalf("clean wrap booked lost=%d restarts=%d", fs.lost, fs.restarts)
	}
	// A 6-record gap straddling nothing special — but the counter has
	// wrapped, so plain subtraction would see a ~2^32 difference.
	tr.ObserveNetFlow(r, start+30+30+6, 30, t0, 0)
	if fs.lost != 6 {
		t.Fatalf("lost across wrap = %d, want 6", fs.lost)
	}
	if fs.restarts != 0 {
		t.Fatalf("wraparound misread as restart")
	}
}

func TestReorderNetsBookedLoss(t *testing.T) {
	tr := New(Options{Now: fixedNow(t0)})
	r := flow.RouterID(3)
	tr.ObserveNetFlow(r, 0, 30, t0, 0)
	tr.ObserveNetFlow(r, 60, 30, t0, 0) // datagram at seq 30 missing: +30 lost
	fs := feed(t, tr, Key{Proto: ProtoNetFlow, Router: r})
	if fs.lost != 30 {
		t.Fatalf("lost = %d, want 30 before late arrival", fs.lost)
	}
	tr.ObserveNetFlow(r, 30, 30, t0, 0) // it was just late
	if fs.lost != 0 {
		t.Fatalf("lost = %d after late arrival, want 0", fs.lost)
	}
	if fs.reordered != 1 {
		t.Fatalf("reordered = %d, want 1", fs.reordered)
	}
	// Expected sequence must not have moved backwards: the next in-order
	// datagram (seq 90) books nothing.
	tr.ObserveNetFlow(r, 90, 30, t0, 0)
	if fs.lost != 0 || fs.restarts != 0 {
		t.Fatalf("post-reorder resume booked lost=%d restarts=%d", fs.lost, fs.restarts)
	}
}

func TestRestartDetection(t *testing.T) {
	tr := New(Options{Now: fixedNow(t0)})
	r := flow.RouterID(4)
	tr.ObserveNetFlow(r, 5_000_000, 30, t0, 0)
	tr.ObserveNetFlow(r, 5_000_030, 30, t0, 0)
	// Exporter reboots and its counter re-seeds at zero: a restart, not a
	// ~4-billion-record gap and not ~5M of loss.
	tr.ObserveNetFlow(r, 0, 30, t0, 0)
	fs := feed(t, tr, Key{Proto: ProtoNetFlow, Router: r})
	if fs.restarts != 1 {
		t.Fatalf("restarts = %d, want 1", fs.restarts)
	}
	if fs.lost != 0 {
		t.Fatalf("restart booked %d lost records", fs.lost)
	}
	// And accounting re-anchors: the next in-order datagram is clean.
	tr.ObserveNetFlow(r, 30, 30, t0, 0)
	if fs.lost != 0 || fs.restarts != 1 {
		t.Fatalf("post-restart lost=%d restarts=%d", fs.lost, fs.restarts)
	}
	// An implausible forward jump is also a restart, not loss.
	tr.ObserveNetFlow(r, 1<<30, 30, t0, 0)
	if fs.restarts != 2 || fs.lost != 0 {
		t.Fatalf("forward jump: restarts=%d lost=%d, want 2/0", fs.restarts, fs.lost)
	}
}

func TestStaleDetectionOnTick(t *testing.T) {
	tr := New(Options{StaleAfter: 3 * time.Minute, Now: fixedNow(t0)})
	r := flow.RouterID(5)
	tr.ObserveNetFlow(r, 0, 30, t0, 0)
	stats := tr.Tick(t0)
	if len(stats) != 1 || stats[0].Stale {
		t.Fatalf("fresh feed read as stale: %+v", stats)
	}
	// Silent for two minutes: not yet stale.
	stats = tr.Tick(t0.Add(2 * time.Minute))
	if stats[0].Stale {
		t.Fatalf("stale after 2m with 3m threshold")
	}
	// Four minutes of silence: stale.
	stats = tr.Tick(t0.Add(4 * time.Minute))
	if !stats[0].Stale {
		t.Fatalf("not stale after 4m silence")
	}
	if stats[0].Coverage != 0 {
		t.Fatalf("stale coverage = %v, want 0", stats[0].Coverage)
	}
	if s, _, deg := tr.IngressCoverage(flow.Ingress{Router: r}); !deg || s != 0 {
		t.Fatalf("IngressCoverage of stale router = (%v, deg=%v)", s, deg)
	}
	// Feed resumes: activity re-anchors and staleness clears.
	tr.ObserveNetFlow(r, 30, 30, t0, 0)
	stats = tr.Tick(t0.Add(5 * time.Minute))
	if stats[0].Stale {
		t.Fatalf("stale after resume")
	}
}

func TestLossDegradesIngressCoverage(t *testing.T) {
	tr := New(Options{Now: fixedNow(t0)})
	r := flow.RouterID(6)
	// 30 of 130 expected records lost this interval (23%).
	tr.ObserveNetFlow(r, 0, 70, t0, 0)
	tr.ObserveNetFlow(r, 100, 30, t0, 0)
	want := 0.5 * 30.0 / 130.0 // alpha * instantaneous loss fraction
	stats := tr.Tick(t0)
	if got := stats[0].LossFrac; math.Abs(got-want) > 1e-9 {
		t.Fatalf("LossFrac = %v, want %v", got, want)
	}
	score, floor, degraded := tr.IngressCoverage(flow.Ingress{Router: r})
	if !degraded {
		t.Fatalf("lossy feed not degraded (score %v floor %v)", score, floor)
	}
	if math.Abs(score-(1-want)) > 1e-9 {
		t.Fatalf("score = %v, want %v", score, 1-want)
	}
	// Clean ticks decay the EWMA back toward full coverage.
	for i := 0; i < 6; i++ {
		tr.ObserveNetFlow(r, uint32(130+100*i), 100, t0, 0)
		tr.Tick(t0.Add(time.Duration(i+1) * time.Minute))
	}
	if _, _, degraded := tr.IngressCoverage(flow.Ingress{Router: r}); degraded {
		t.Fatalf("coverage still degraded after recovery")
	}
}

func TestUnknownRouterFullCoverage(t *testing.T) {
	tr := New(Options{Now: fixedNow(t0)})
	if s, _, deg := tr.IngressCoverage(flow.Ingress{Router: 99}); deg || s != 1 {
		t.Fatalf("pre-tick coverage = (%v, %v), want (1, false)", s, deg)
	}
	tr.ObserveNetFlow(7, 0, 30, t0, 0)
	tr.Tick(t0)
	if s, _, deg := tr.IngressCoverage(flow.Ingress{Router: 99}); deg || s != 1 {
		t.Fatalf("untracked router coverage = (%v, %v), want (1, false)", s, deg)
	}
}

func TestClockSkewDetection(t *testing.T) {
	tr := New(Options{SkewMax: 2 * time.Minute, Now: fixedNow(t0)})
	r := flow.RouterID(8)
	// Exporter clock ten minutes ahead of the collector.
	for i := 0; i < 20; i++ {
		tr.ObserveNetFlow(r, uint32(30*i), 30, t0.Add(10*time.Minute), 0)
	}
	stats := tr.Tick(t0)
	if !stats[0].SkewExceeded {
		t.Fatalf("10m skew with 2m limit not flagged: %+v", stats[0])
	}
	if got := stats[0].SkewSeconds; math.Abs(got-600) > 60 {
		t.Fatalf("SkewSeconds = %v, want ~600", got)
	}
	// Skew halves coverage even without loss.
	if got := stats[0].Coverage; math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("skewed coverage = %v, want 0.5", got)
	}
}

func TestObserveRecordFastPath(t *testing.T) {
	tr := New(Options{Now: fixedNow(t0)})
	r := flow.RouterID(9)
	for i := 0; i < 1000; i++ {
		tr.ObserveRecord(r)
	}
	fs := feed(t, tr, Key{Proto: ProtoTrace, Router: r})
	if got := fs.records.Load(); got != 1000 {
		t.Fatalf("records = %d, want 1000", got)
	}
	stats := tr.Tick(t0)
	if stats[0].Records != 1000 || stats[0].Stale {
		t.Fatalf("trace tick stat: %+v", stats[0])
	}
}

func TestIPFIXUnknownTemplateResync(t *testing.T) {
	tr := New(Options{Now: fixedNow(t0)})
	r, dom := flow.RouterID(10), uint32(7)
	tr.ObserveIPFIX(r, dom, 0, 10, 0, 0, t0)
	// This message carries an unknown-template set: its record total is
	// unknowable, so the tracker must resync instead of booking a gap
	// when the next message's sequence reflects records we never saw.
	tr.ObserveIPFIX(r, dom, 10, 5, 0, 1, t0)
	tr.ObserveIPFIX(r, dom, 40, 10, 0, 0, t0) // 25 unseen records in between
	fs := feed(t, tr, Key{Proto: ProtoIPFIX, Router: r, Domain: dom})
	if fs.lost != 0 {
		t.Fatalf("lost = %d after unknown-template resync, want 0", fs.lost)
	}
	if fs.unknownSets != 1 {
		t.Fatalf("unknownSets = %d, want 1", fs.unknownSets)
	}
	// And accounting is live again after the resync anchor.
	tr.ObserveIPFIX(r, dom, 60, 10, 0, 0, t0) // 10 lost after the anchor at 50
	if fs.lost != 10 {
		t.Fatalf("lost = %d after re-anchored gap, want 10", fs.lost)
	}
}

func TestSamplingChangeCounted(t *testing.T) {
	tr := New(Options{Now: fixedNow(t0)})
	r := flow.RouterID(11)
	tr.ObserveNetFlow(r, 0, 30, t0, 100)
	tr.ObserveNetFlow(r, 30, 30, t0, 100)
	tr.ObserveNetFlow(r, 60, 30, t0, 1000)
	fs := feed(t, tr, Key{Proto: ProtoNetFlow, Router: r})
	if fs.samplingChanges != 1 {
		t.Fatalf("samplingChanges = %d, want 1", fs.samplingChanges)
	}
	if !tr.Tick(t0)[0].SamplingChanged {
		t.Fatalf("tick did not flag the sampling change")
	}
	if tr.Tick(t0.Add(time.Minute))[0].SamplingChanged {
		t.Fatalf("sampling change flagged again on a quiet tick")
	}
}

func TestTickSortedAndSnapshotStable(t *testing.T) {
	tr := New(Options{Now: fixedNow(t0)})
	tr.ObserveNetFlow(12, 0, 1, t0, 0)
	tr.ObserveIPFIX(3, 256, 0, 1, 0, 0, t0)
	tr.ObserveNetFlow(2, 0, 1, t0, 0)
	tr.ObserveRecord(5)
	want := []string{"ipfix:R3/256", "netflow:R12", "netflow:R2", "trace:R5"}
	stats := tr.Tick(t0)
	if len(stats) != len(want) {
		t.Fatalf("tick returned %d stats, want %d", len(stats), len(want))
	}
	for i, st := range stats {
		if st.Key != want[i] {
			t.Fatalf("tick order[%d] = %q, want %q", i, st.Key, want[i])
		}
	}
	snap := tr.Snapshot()
	for i, e := range snap.Exporters {
		if e.Key != want[i] {
			t.Fatalf("snapshot order[%d] = %q, want %q", i, e.Key, want[i])
		}
	}
	if snap.TrackedFeeds != 4 {
		t.Fatalf("TrackedFeeds = %d, want 4", snap.TrackedFeeds)
	}
}

func TestMaxExportersBound(t *testing.T) {
	tr := New(Options{MaxExporters: 2, Now: fixedNow(t0)})
	tr.ObserveNetFlow(1, 0, 1, t0, 0)
	tr.ObserveNetFlow(2, 0, 1, t0, 0)
	tr.ObserveNetFlow(3, 0, 1, t0, 0) // over the cap: dropped
	tr.ObserveRecord(4)               // over the cap: blackholed, no panic
	tr.ObserveRecord(4)
	snap := tr.Snapshot()
	if snap.TrackedFeeds != 2 {
		t.Fatalf("TrackedFeeds = %d, want 2", snap.TrackedFeeds)
	}
	if snap.DroppedFeeds != 2 {
		t.Fatalf("DroppedFeeds = %d, want 2", snap.DroppedFeeds)
	}
}

// FuzzNoteSequence drives the sequence state machine with arbitrary header
// values: it must never panic, and cumulative loss plus delivered records
// must never exceed what the counters imply is a bounded quantity (loss is
// only ever booked from a bounded forward gap).
func FuzzNoteSequence(f *testing.F) {
	f.Add(uint32(0), uint16(30), uint32(30), uint16(30))
	f.Add(uint32(0xFFFFFFF0), uint16(30), uint32(14), uint16(30))  // wrap
	f.Add(uint32(5_000_000), uint16(30), uint32(0), uint16(30))    // restart
	f.Add(uint32(60), uint16(30), uint32(30), uint16(30))          // reorder
	f.Add(uint32(0), uint16(0), uint32(1<<30), uint16(30))         // huge jump
	f.Fuzz(func(t *testing.T, seq1 uint32, n1 uint16, seq2 uint32, n2 uint16) {
		opts := Options{}.withDefaults()
		fs := &feedState{}
		fs.noteSequence(seq1, int(n1), opts)
		fs.noteSequence(seq2, int(n2), opts)
		if fs.lost > uint64(opts.MaxForwardGap) {
			t.Fatalf("booked %d lost records from one gap (max %d)", fs.lost, opts.MaxForwardGap)
		}
	})
}
