// Package exphealth tracks the health of the flow exporters feeding IPD.
//
// IPD's verdicts are only as trustworthy as its input (paper §3.1 assumes
// sampled exports from hundreds of border routers), yet the transport
// headers that reveal input quality — NetFlow v5 FlowSequence, IPFIX
// per-domain Sequence, export timestamps, sampling intervals — are normally
// discarded once records are decoded. This package keeps them: a Tracker
// accounts, per exporter feed, for datagram loss (sequence gaps with 32-bit
// wraparound, reorder netting, and restart detection), export-clock skew
// against the collector clock and the statistical-time bins, record-rate
// and sampling-interval drift, silent/stale feeds, and IPFIX template
// churn. Per-feed health folds into a per-ingress coverage score in [0, 1]
// that the engine consults when classifying, so decisions made on degraded
// input carry provenance (ReasonDegradedCoverage) instead of silently
// polluting the partition.
//
// Hot paths are cheap by construction: per-record trace accounting
// (ObserveRecord) is one atomic add behind a copy-on-write slice lookup;
// per-datagram accounting takes one short mutex hold per datagram, not per
// record. Cycle analytics (Tick) run on the engine's statistical clock so
// alert decisions derived from them replay deterministically.
package exphealth

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"ipd/internal/flow"
	"ipd/internal/telemetry"
)

// Proto identifies which decode path feeds an exporter entry.
type Proto uint8

const (
	// ProtoNetFlow is a NetFlow v5 stream attributed to a router.
	ProtoNetFlow Proto = iota
	// ProtoIPFIX is one IPFIX observation domain of a router.
	ProtoIPFIX
	// ProtoTrace is per-record accounting from an offline trace (no
	// transport headers, so only rates and staleness are observable).
	ProtoTrace
)

// String returns the short protocol tag used in feed keys.
func (p Proto) String() string {
	switch p {
	case ProtoNetFlow:
		return "netflow"
	case ProtoIPFIX:
		return "ipfix"
	case ProtoTrace:
		return "trace"
	}
	return "unknown"
}

// Key identifies one exporter feed: the protocol, the attributed router,
// and (for IPFIX) the observation domain.
type Key struct {
	Proto  Proto
	Router flow.RouterID
	Domain uint32 // IPFIX observation domain; zero otherwise
}

// String renders the feed key in the stable form used as alert subjects
// and snapshot keys: "netflow:R12", "ipfix:R3/256", "trace:R7".
func (k Key) String() string {
	if k.Proto == ProtoIPFIX {
		return fmt.Sprintf("ipfix:R%d/%d", k.Router, k.Domain)
	}
	return fmt.Sprintf("%s:R%d", k.Proto, k.Router)
}

// Options configures a Tracker. The zero value picks the documented
// defaults.
type Options struct {
	// StaleAfter is how long a feed may go without producing any
	// datagram or record (in statistical time, measured between cycle
	// Ticks) before it is considered stale. Default 3m.
	StaleAfter time.Duration

	// SkewMax is the absolute export-timestamp skew (exporter clock vs
	// collector clock) beyond which a feed's clock is considered broken.
	// Skewed timestamps land records in the wrong statistical-time bins,
	// so a feed over this limit also halves its coverage score.
	// Default 5m.
	SkewMax time.Duration

	// DegradedBelow is the coverage floor: an ingress whose routers'
	// feeds score below it has classifications annotated with
	// ReasonDegradedCoverage. Default 0.9.
	DegradedBelow float64

	// LossAlpha, RateAlpha, SkewAlpha are EWMA smoothing factors for the
	// loss fraction, per-cycle record rate, and clock skew estimates.
	// Defaults 0.5, 0.3, 0.2.
	LossAlpha float64
	RateAlpha float64
	SkewAlpha float64

	// ReorderTolerance bounds how far backwards a datagram's sequence
	// may sit from the expected value and still be treated as late
	// delivery (netted against booked loss) rather than an exporter
	// restart. In records. Default 4096.
	ReorderTolerance uint32

	// MaxForwardGap bounds how large a forward sequence gap is believed
	// as loss; anything larger is an exporter restart with a re-seeded
	// counter. In records. Default 1<<26.
	MaxForwardGap uint32

	// MaxExporters bounds tracked feeds; feeds beyond it are counted as
	// dropped and not tracked. Default 4096.
	MaxExporters int

	// Now supplies the collector wall clock used for skew measurement.
	// Injectable so deterministic harnesses can pin it to virtual time.
	// Default time.Now.
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.StaleAfter <= 0 {
		o.StaleAfter = 3 * time.Minute
	}
	if o.SkewMax <= 0 {
		o.SkewMax = 5 * time.Minute
	}
	if o.DegradedBelow <= 0 || o.DegradedBelow > 1 {
		o.DegradedBelow = 0.9
	}
	if o.LossAlpha <= 0 || o.LossAlpha > 1 {
		o.LossAlpha = 0.5
	}
	if o.RateAlpha <= 0 || o.RateAlpha > 1 {
		o.RateAlpha = 0.3
	}
	if o.SkewAlpha <= 0 || o.SkewAlpha > 1 {
		o.SkewAlpha = 0.2
	}
	if o.ReorderTolerance == 0 {
		o.ReorderTolerance = 4096
	}
	if o.MaxForwardGap == 0 {
		o.MaxForwardGap = 1 << 26
	}
	if o.MaxExporters <= 0 {
		o.MaxExporters = 4096
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// feedState is the per-feed accounting. Mutated under Tracker.mu except
// records, which the trace fast path bumps atomically.
type feedState struct {
	key Key

	records   atomic.Uint64 // data records attributed to this feed
	datagrams uint64        // datagrams / IPFIX messages
	lost      uint64        // records lost to sequence gaps (net of reorders)
	reordered uint64        // datagrams that arrived late or duplicated
	restarts  uint64        // sequence resets / implausible jumps

	seqInit bool
	nextSeq uint32 // expected sequence of the next datagram

	skewInit   bool
	skewEWMA   float64 // seconds, exporter clock minus collector clock
	maxAbsSkew float64
	lastExport time.Time

	sampling        uint16
	samplingSet     bool
	samplingChanges uint64

	templateRecords uint64 // IPFIX template records received
	unknownSets     uint64 // IPFIX data sets with no known template

	// Cycle-tick folds (all statistical time).
	lastRecords   uint64
	lastLost      uint64
	lastDatagrams uint64
	lastTemplates uint64
	lastUnknown   uint64
	lastSampChg   uint64
	lossEWMA      float64
	rateEWMA      float64
	haveRate      bool
	seenTick      bool
	lastActive    time.Time
	stale         bool
	coverage      float64
}

// CycleStat is one feed's health as folded at a cycle Tick. Slices of
// CycleStat are returned sorted by Key, so downstream alerting iterates
// deterministically.
type CycleStat struct {
	Key    string
	Router flow.RouterID

	Records   uint64 // records this tick
	Lost      uint64 // records lost this tick
	Datagrams uint64 // datagrams this tick

	LossFrac  float64 // smoothed loss fraction in [0, 1]
	RateEWMA  float64 // smoothed records per tick
	RateDrift float64 // |rate - EWMA| / EWMA before this tick folded in

	SkewSeconds      float64 // smoothed exporter-minus-collector clock skew
	SkewExceeded     bool    // |SkewSeconds| >= SkewMax
	SkewMaxSeconds   float64
	ExportLagSeconds float64 // tick stattime minus last export timestamp

	Stale             bool
	SilentForSeconds  float64
	StaleAfterSeconds float64

	Coverage float64 // rolled-up feed coverage in [0, 1]

	SamplingChanged bool   // sampling interval changed since last tick
	TemplateRecords uint64 // IPFIX template records this tick
	UnknownSets     uint64 // unknown-template data sets this tick
	Restarts        uint64 // cumulative exporter restarts
}

// Tracker accounts exporter health across all feeds. Safe for concurrent
// use by decode goroutines, the cycle tick, and HTTP snapshots.
type Tracker struct {
	opts Options

	mu      sync.Mutex
	feeds   map[Key]*feedState
	order   []*feedState // sorted by key string
	dropped uint64       // feeds rejected at MaxExporters

	// fast is the per-record trace path: RouterID-indexed copy-on-write
	// slice so ObserveRecord is one bounds check + one atomic add.
	fast atomic.Pointer[[]*feedState]
	// blackhole absorbs records for routers past MaxExporters so the
	// rejected path stays off the mutex.
	blackhole feedState

	// cov is last Tick's per-router coverage roll-up, swapped atomically
	// for the engine's classify-time reads.
	cov atomic.Pointer[map[flow.RouterID]float64]

	// skews is last Tick's per-router skew roll-up (the worst |skew| feed's
	// smoothed exporter-minus-collector seconds), swapped atomically for the
	// workload profiler's latency correction reads.
	skews atomic.Pointer[map[flow.RouterID]float64]

	ticked    bool
	lastTick  time.Time
	aggStale  int64
	aggSkew   uint64 // math.Float64bits of max |skew| across feeds
	aggCovMin uint64 // math.Float64bits of min coverage across feeds
}

// New returns a Tracker with the given options (zero value = defaults).
func New(opts Options) *Tracker {
	t := &Tracker{
		opts:  opts.withDefaults(),
		feeds: make(map[Key]*feedState),
	}
	t.aggCovMin = math.Float64bits(1)
	return t
}

// StaleAfter reports the configured silent-feed threshold.
func (t *Tracker) StaleAfter() time.Duration { return t.opts.StaleAfter }

// SkewMax reports the configured clock-skew limit.
func (t *Tracker) SkewMax() time.Duration { return t.opts.SkewMax }

// feedLocked returns the state for key, creating it if there is room.
// Returns nil when the feed table is full and key is new.
func (t *Tracker) feedLocked(key Key) *feedState {
	if fs, ok := t.feeds[key]; ok {
		return fs
	}
	if len(t.feeds) >= t.opts.MaxExporters {
		t.dropped++
		return nil
	}
	fs := &feedState{key: key, coverage: 1}
	t.feeds[key] = fs
	ks := key.String()
	i := 0
	for i < len(t.order) && t.order[i].key.String() < ks {
		i++
	}
	t.order = append(t.order, nil)
	copy(t.order[i+1:], t.order[i:])
	t.order[i] = fs
	return fs
}

// ObserveRecord accounts one trace record attributed to router. This is
// the engine-ingest hot path: a copy-on-write slice lookup plus one atomic
// add, no locks once the router is known.
func (t *Tracker) ObserveRecord(router flow.RouterID) {
	if p := t.fast.Load(); p != nil {
		sl := *p
		if int(router) < len(sl) {
			if fs := sl[router]; fs != nil {
				fs.records.Add(1)
				return
			}
		}
	}
	t.observeRecordSlow(router)
}

func (t *Tracker) observeRecordSlow(router flow.RouterID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	fs := t.feedLocked(Key{Proto: ProtoTrace, Router: router})
	if fs == nil {
		fs = &t.blackhole
	}
	fs.records.Add(1)
	var sl []*feedState
	if p := t.fast.Load(); p != nil {
		sl = *p
	}
	if int(router) >= len(sl) {
		grown := make([]*feedState, int(router)+1)
		copy(grown, sl)
		sl = grown
	} else {
		sl = append([]*feedState(nil), sl...)
	}
	sl[router] = fs
	t.fast.Store(&sl)
}

// ObserveNetFlow accounts one decoded NetFlow v5 datagram: sequence-gap
// loss (FlowSequence counts the flows the exporter sent before this
// datagram), export-clock skew, and sampling-interval changes.
func (t *Tracker) ObserveNetFlow(router flow.RouterID, seq uint32, records int, exportTime time.Time, sampling uint16) {
	t.mu.Lock()
	defer t.mu.Unlock()
	fs := t.feedLocked(Key{Proto: ProtoNetFlow, Router: router})
	if fs == nil {
		return
	}
	fs.datagrams++
	fs.records.Add(uint64(records))
	fs.noteSequence(seq, records, t.opts)
	fs.noteExport(exportTime, t.opts.Now(), t.opts)
	if fs.samplingSet && fs.sampling != sampling {
		fs.samplingChanges++
	}
	fs.sampling, fs.samplingSet = sampling, true
}

// ObserveIPFIX accounts one decoded IPFIX message for an observation
// domain. Per RFC 7011 the header Sequence counts the data records sent
// before this message, so template records never advance it. A message
// carrying unknown-template data sets has an unknowable record total;
// sequence accounting resynchronizes on the next message instead of
// booking a bogus gap.
func (t *Tracker) ObserveIPFIX(router flow.RouterID, domain, seq uint32, dataRecords, templateRecords, unknownSets int, exportTime time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	fs := t.feedLocked(Key{Proto: ProtoIPFIX, Router: router, Domain: domain})
	if fs == nil {
		return
	}
	fs.datagrams++
	fs.records.Add(uint64(dataRecords))
	fs.templateRecords += uint64(templateRecords)
	fs.noteSequence(seq, dataRecords, t.opts)
	if unknownSets > 0 {
		fs.unknownSets += uint64(unknownSets)
		fs.seqInit = false // record total unknowable: resync next message
	}
	fs.noteExport(exportTime, t.opts.Now(), t.opts)
}

// noteSequence runs the shared sequence-gap state machine. seq is the
// counter carried by this datagram (records sent before it), n the records
// it carries. All arithmetic is uint32 so wraparound at 2^32 behaves.
func (fs *feedState) noteSequence(seq uint32, n int, opts Options) {
	next := seq + uint32(n)
	if !fs.seqInit {
		fs.seqInit = true
		fs.nextSeq = next
		return
	}
	delta := int64(int32(seq - fs.nextSeq))
	switch {
	case delta == 0:
		fs.nextSeq = next
	case delta < 0 && delta >= -int64(opts.ReorderTolerance):
		// A datagram we already booked as lost arrived late (or twice):
		// net its records back out. Expected sequence stays put.
		fs.reordered++
		if un := uint64(n); fs.lost >= un {
			fs.lost -= un
		} else {
			fs.lost = 0
		}
	case delta > 0 && delta <= int64(opts.MaxForwardGap):
		fs.lost += uint64(delta)
		fs.nextSeq = next
	default:
		// Sequence reset (counter re-seeded near zero) or an implausible
		// jump: the exporter restarted. Not loss — re-anchor.
		fs.restarts++
		fs.nextSeq = next
	}
}

func (fs *feedState) noteExport(exportTime, now time.Time, opts Options) {
	fs.lastExport = exportTime
	skew := exportTime.Sub(now).Seconds()
	if !fs.skewInit {
		fs.skewInit = true
		fs.skewEWMA = skew
	} else {
		fs.skewEWMA += opts.SkewAlpha * (skew - fs.skewEWMA)
	}
	if a := math.Abs(skew); a > fs.maxAbsSkew {
		fs.maxAbsSkew = a
	}
}

// Tick folds per-feed deltas at a cycle boundary and returns one CycleStat
// per feed, sorted by key. at is statistical time (the cycle sample
// timestamp), so staleness and every stat that feeds alert decisions are
// deterministic functions of the input stream and replay byte-equal.
func (t *Tracker) Tick(at time.Time) []CycleStat {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ticked = true
	t.lastTick = at
	stats := make([]CycleStat, 0, len(t.order))
	cov := make(map[flow.RouterID]float64, len(t.order))
	skews := make(map[flow.RouterID]float64, len(t.order))
	var stale int64
	maxSkew, covMin := 0.0, 1.0
	for _, fs := range t.order {
		st := fs.fold(at, t.opts)
		stats = append(stats, st)
		if c, ok := cov[fs.key.Router]; !ok || st.Coverage < c {
			cov[fs.key.Router] = st.Coverage
		}
		if s, ok := skews[fs.key.Router]; !ok || math.Abs(st.SkewSeconds) > math.Abs(s) {
			skews[fs.key.Router] = st.SkewSeconds
		}
		if st.Stale {
			stale++
		}
		if a := math.Abs(st.SkewSeconds); a > maxSkew {
			maxSkew = a
		}
		if st.Coverage < covMin {
			covMin = st.Coverage
		}
	}
	t.cov.Store(&cov)
	t.skews.Store(&skews)
	t.aggStale = stale
	t.aggSkew = math.Float64bits(maxSkew)
	t.aggCovMin = math.Float64bits(covMin)
	return stats
}

func (fs *feedState) fold(at time.Time, opts Options) CycleStat {
	recs := fs.records.Load()
	dr := recs - fs.lastRecords
	fs.lastRecords = recs
	if fs.lost < fs.lastLost {
		// Reorder netting pulled cumulative loss back below the last
		// fold; the correction erases previously booked loss.
		fs.lastLost = fs.lost
	}
	dl := fs.lost - fs.lastLost
	fs.lastLost = fs.lost
	dd := fs.datagrams - fs.lastDatagrams
	fs.lastDatagrams = fs.datagrams
	dt := fs.templateRecords - fs.lastTemplates
	fs.lastTemplates = fs.templateRecords
	du := fs.unknownSets - fs.lastUnknown
	fs.lastUnknown = fs.unknownSets
	sampChanged := fs.samplingChanges != fs.lastSampChg
	fs.lastSampChg = fs.samplingChanges

	if !fs.seenTick {
		// A feed first observed between ticks gets this tick as its
		// activity anchor, so creation alone never reads as stale.
		fs.seenTick = true
		fs.lastActive = at
	} else if dr > 0 || dd > 0 {
		fs.lastActive = at
	}
	silent := at.Sub(fs.lastActive)
	fs.stale = silent > opts.StaleAfter

	if dr+dl > 0 {
		inst := float64(dl) / float64(dr+dl)
		fs.lossEWMA += opts.LossAlpha * (inst - fs.lossEWMA)
	}

	rate := float64(dr)
	var drift float64
	if fs.haveRate && fs.rateEWMA > 0 {
		drift = math.Abs(rate-fs.rateEWMA) / fs.rateEWMA
	}
	if !fs.haveRate {
		fs.rateEWMA, fs.haveRate = rate, true
	} else {
		fs.rateEWMA += opts.RateAlpha * (rate - fs.rateEWMA)
	}

	skewExceeded := fs.skewInit && math.Abs(fs.skewEWMA) >= opts.SkewMax.Seconds()
	cov := 1 - fs.lossEWMA
	if cov < 0 {
		cov = 0
	}
	if skewExceeded {
		cov *= 0.5
	}
	if fs.stale {
		cov = 0
	}
	fs.coverage = cov

	var lag float64
	if !fs.lastExport.IsZero() {
		lag = at.Sub(fs.lastExport).Seconds()
	}

	return CycleStat{
		Key:               fs.key.String(),
		Router:            fs.key.Router,
		Records:           dr,
		Lost:              dl,
		Datagrams:         dd,
		LossFrac:          fs.lossEWMA,
		RateEWMA:          fs.rateEWMA,
		RateDrift:         drift,
		SkewSeconds:       fs.skewEWMA,
		SkewExceeded:      skewExceeded,
		SkewMaxSeconds:    opts.SkewMax.Seconds(),
		ExportLagSeconds:  lag,
		Stale:             fs.stale,
		SilentForSeconds:  silent.Seconds(),
		StaleAfterSeconds: opts.StaleAfter.Seconds(),
		Coverage:          cov,
		SamplingChanged:   sampChanged,
		TemplateRecords:   dt,
		UnknownSets:       du,
		Restarts:          fs.restarts,
	}
}

// IngressCoverage reports the coverage score of the ingress's router as of
// the last Tick, the configured floor, and whether the score is below it.
// Matches core.Config.Coverage. Routers with no tracked feed (or before
// the first Tick) report full coverage — absence of evidence is not
// degradation. Lock-free; callable from inside the engine's cycle.
func (t *Tracker) IngressCoverage(in flow.Ingress) (score, floor float64, degraded bool) {
	floor = t.opts.DegradedBelow
	m := t.cov.Load()
	if m == nil {
		return 1, floor, false
	}
	c, ok := (*m)[in.Router]
	if !ok {
		return 1, floor, false
	}
	return c, floor, c < floor
}

// RouterSkew reports the router's smoothed exporter-minus-collector clock
// skew in seconds as of the last Tick (the worst-offset feed when a router
// has several). Routers with no tracked feed, or before the first Tick,
// report 0. Lock-free; matches workload.Options.Skew, so record latency
// measurement can subtract the export clock's error.
func (t *Tracker) RouterSkew(router flow.RouterID) float64 {
	m := t.skews.Load()
	if m == nil {
		return 0
	}
	return (*m)[router]
}

// FeedSnapshot is one feed's cumulative and smoothed state for the
// /ipd/exporters endpoint.
type FeedSnapshot struct {
	Key    string `json:"key"`
	Proto  string `json:"proto"`
	Router uint16 `json:"router"`
	Domain uint32 `json:"domain,omitempty"`

	Datagrams   uint64 `json:"datagrams"`
	Records     uint64 `json:"records"`
	LostRecords uint64 `json:"lost_records"`
	Reordered   uint64 `json:"reordered"`
	Restarts    uint64 `json:"restarts"`

	LossFrac          float64 `json:"loss_frac"`
	RateEWMA          float64 `json:"rate_ewma"`
	SkewSeconds       float64 `json:"skew_seconds"`
	MaxAbsSkewSeconds float64 `json:"max_abs_skew_seconds"`
	Coverage          float64 `json:"coverage"`
	Stale             bool    `json:"stale"`

	SamplingInterval uint16 `json:"sampling_interval,omitempty"`
	SamplingChanges  uint64 `json:"sampling_changes,omitempty"`
	TemplateRecords  uint64 `json:"template_records,omitempty"`
	UnknownSets      uint64 `json:"unknown_template_sets,omitempty"`

	LastExport time.Time `json:"last_export,omitempty"`
}

// Snapshot is the full tracker state for /ipd/exporters.
type Snapshot struct {
	TrackedFeeds      int            `json:"tracked_feeds"`
	DroppedFeeds      uint64         `json:"dropped_feeds,omitempty"`
	StaleAfterSeconds float64        `json:"stale_after_seconds"`
	SkewMaxSeconds    float64        `json:"skew_max_seconds"`
	CoverageFloor     float64        `json:"coverage_floor"`
	LastTick          time.Time      `json:"last_tick,omitempty"`
	Exporters         []FeedSnapshot `json:"exporters"`
}

// Snapshot returns the current per-feed state, sorted by key.
func (t *Tracker) Snapshot() Snapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := Snapshot{
		TrackedFeeds:      len(t.feeds),
		DroppedFeeds:      t.dropped,
		StaleAfterSeconds: t.opts.StaleAfter.Seconds(),
		SkewMaxSeconds:    t.opts.SkewMax.Seconds(),
		CoverageFloor:     t.opts.DegradedBelow,
		LastTick:          t.lastTick,
		Exporters:         make([]FeedSnapshot, 0, len(t.order)),
	}
	for _, fs := range t.order {
		s.Exporters = append(s.Exporters, FeedSnapshot{
			Key:               fs.key.String(),
			Proto:             fs.key.Proto.String(),
			Router:            uint16(fs.key.Router),
			Domain:            fs.key.Domain,
			Datagrams:         fs.datagrams,
			Records:           fs.records.Load(),
			LostRecords:       fs.lost,
			Reordered:         fs.reordered,
			Restarts:          fs.restarts,
			LossFrac:          fs.lossEWMA,
			RateEWMA:          fs.rateEWMA,
			SkewSeconds:       fs.skewEWMA,
			MaxAbsSkewSeconds: fs.maxAbsSkew,
			Coverage:          fs.coverage,
			Stale:             fs.stale,
			SamplingInterval:  fs.sampling,
			SamplingChanges:   fs.samplingChanges,
			TemplateRecords:   fs.templateRecords,
			UnknownSets:       fs.unknownSets,
			LastExport:        fs.lastExport,
		})
	}
	return s
}

// Summary holds the headline numbers for /stats blocks.
type Summary struct {
	Feeds       int    `json:"feeds"`
	Stale       int64  `json:"stale"`
	Records     uint64 `json:"records"`
	LostRecords uint64 `json:"lost_records"`
	Restarts    uint64 `json:"restarts"`
}

// Summary returns the headline totals.
func (t *Tracker) Summary() Summary {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := Summary{Feeds: len(t.feeds), Stale: t.aggStale}
	for _, fs := range t.order {
		s.Records += fs.records.Load()
		s.LostRecords += fs.lost
		s.Restarts += fs.restarts
	}
	return s
}

func (t *Tracker) totalsLocked() (records, lost, reordered, restarts, templates, unknown, sampChanges uint64) {
	for _, fs := range t.order {
		records += fs.records.Load()
		lost += fs.lost
		reordered += fs.reordered
		restarts += fs.restarts
		templates += fs.templateRecords
		unknown += fs.unknownSets
		sampChanges += fs.samplingChanges
	}
	return
}

// RegisterMetrics exposes the ipd_exporter_* families on reg.
func (t *Tracker) RegisterMetrics(reg *telemetry.Registry) {
	total := func(pick func(records, lost, reordered, restarts, templates, unknown, sampChanges uint64) uint64) func() float64 {
		return func() float64 {
			t.mu.Lock()
			defer t.mu.Unlock()
			return float64(pick(t.totalsLocked()))
		}
	}
	reg.GaugeFunc("ipd_exporter_feeds", "Exporter feeds currently tracked.", func() float64 {
		t.mu.Lock()
		defer t.mu.Unlock()
		return float64(len(t.feeds))
	})
	reg.CounterFunc("ipd_exporter_records_total", "Data records attributed across all exporter feeds.",
		total(func(r, _, _, _, _, _, _ uint64) uint64 { return r }))
	reg.CounterFunc("ipd_exporter_lost_records_total", "Records lost to sequence gaps (net of reordered arrivals).",
		total(func(_, l, _, _, _, _, _ uint64) uint64 { return l }))
	reg.CounterFunc("ipd_exporter_reordered_total", "Datagrams that arrived out of order or duplicated.",
		total(func(_, _, o, _, _, _, _ uint64) uint64 { return o }))
	reg.CounterFunc("ipd_exporter_restarts_total", "Exporter restarts detected from sequence resets.",
		total(func(_, _, _, s, _, _, _ uint64) uint64 { return s }))
	reg.CounterFunc("ipd_exporter_template_records_total", "IPFIX template records received.",
		total(func(_, _, _, _, tp, _, _ uint64) uint64 { return tp }))
	reg.CounterFunc("ipd_exporter_unknown_template_sets_total", "IPFIX data sets skipped for lack of a template.",
		total(func(_, _, _, _, _, u, _ uint64) uint64 { return u }))
	reg.CounterFunc("ipd_exporter_sampling_changes_total", "NetFlow sampling-interval changes observed.",
		total(func(_, _, _, _, _, _, c uint64) uint64 { return c }))
	reg.GaugeFunc("ipd_exporter_stale", "Feeds currently stale (silent past -exporter-stale-after).", func() float64 {
		t.mu.Lock()
		defer t.mu.Unlock()
		return float64(t.aggStale)
	})
	reg.GaugeFunc("ipd_exporter_skew_seconds_max", "Largest absolute smoothed clock skew across feeds.", func() float64 {
		t.mu.Lock()
		defer t.mu.Unlock()
		return math.Float64frombits(t.aggSkew)
	})
	reg.GaugeFunc("ipd_exporter_coverage_min", "Lowest feed coverage score as of the last cycle tick.", func() float64 {
		t.mu.Lock()
		defer t.mu.Unlock()
		return math.Float64frombits(t.aggCovMin)
	})
}
