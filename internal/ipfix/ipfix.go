// Package ipfix implements the subset of IPFIX (RFC 7011) that the IPD
// input pipeline needs: message framing, template sets, data sets, and a
// per-exporter template cache. The paper's deployment consumes "Netflow or
// IPFIX" (§3.1); unlike NetFlow v5, IPFIX carries IPv6 flows — which IPD
// maps at /48 granularity — so this is the v6-capable input path.
//
// Supported information elements (IANA IPFIX registry):
//
//	sourceIPv4Address(8)       destinationIPv4Address(12)
//	sourceIPv6Address(27)      destinationIPv6Address(28)
//	ingressInterface(10)       octetDeltaCount(1)
//	packetDeltaCount(2)        flowStartMilliseconds(152)
//
// Unknown elements are skipped using the template's field lengths, so
// richer exporter schemas still decode. Variable-length elements (length
// 0xFFFF) are not supported and cause the template to be rejected.
package ipfix

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"time"

	"ipd/internal/flow"
)

// Version is the IPFIX protocol version number.
const Version = 10

// MessageHeaderLen and SetHeaderLen are the RFC 7011 fixed sizes.
const (
	MessageHeaderLen = 16
	SetHeaderLen     = 4
)

// Set IDs.
const (
	// TemplateSetID carries template records.
	TemplateSetID = 2
	// OptionsTemplateSetID carries options templates (skipped).
	OptionsTemplateSetID = 3
	// MinDataSetID is the first valid data-set (= template) ID.
	MinDataSetID = 256
)

// Information element IDs used by the converter.
const (
	IEOctetDeltaCount        = 1
	IEPacketDeltaCount       = 2
	IESourceIPv4Address      = 8
	IEIngressInterface       = 10
	IEDestinationIPv4Address = 12
	IESourceIPv6Address      = 27
	IEDestinationIPv6Address = 28
	IEFlowStartMilliseconds  = 152
)

// FieldSpec is one template field.
type FieldSpec struct {
	// ID is the information element ID (enterprise elements are rejected).
	ID uint16
	// Length is the fixed field length in bytes.
	Length uint16
}

// Template is a parsed template record.
type Template struct {
	ID     uint16
	Fields []FieldSpec
}

// recordLen returns the fixed byte length of one data record.
func (t Template) recordLen() int {
	n := 0
	for _, f := range t.Fields {
		n += int(f.Length)
	}
	return n
}

// Message is a parsed IPFIX message.
type Message struct {
	// ExportTime is the header export timestamp (second granularity).
	ExportTime time.Time
	// Sequence and DomainID are the header counters.
	Sequence uint32
	DomainID uint32
	// Templates are the template records seen in this message.
	Templates []Template
	// DataSets are the raw data sets, to be decoded against the exporter's
	// template cache.
	DataSets []DataSet
}

// DataSet is one undecoded data set.
type DataSet struct {
	TemplateID uint16
	Payload    []byte
}

// DecodeMessage parses one IPFIX message (without resolving data sets; use
// a Cache for that).
func DecodeMessage(b []byte) (*Message, error) {
	if len(b) < MessageHeaderLen {
		return nil, fmt.Errorf("ipfix: message too short (%d bytes)", len(b))
	}
	if v := binary.BigEndian.Uint16(b[0:]); v != Version {
		return nil, fmt.Errorf("ipfix: unsupported version %d", v)
	}
	msgLen := int(binary.BigEndian.Uint16(b[2:]))
	if msgLen < MessageHeaderLen || msgLen > len(b) {
		return nil, fmt.Errorf("ipfix: bad message length %d (have %d bytes)", msgLen, len(b))
	}
	msg := &Message{
		ExportTime: time.Unix(int64(binary.BigEndian.Uint32(b[4:])), 0).UTC(),
		Sequence:   binary.BigEndian.Uint32(b[8:]),
		DomainID:   binary.BigEndian.Uint32(b[12:]),
	}
	rest := b[MessageHeaderLen:msgLen]
	for len(rest) > 0 {
		if len(rest) < SetHeaderLen {
			return nil, fmt.Errorf("ipfix: truncated set header")
		}
		setID := binary.BigEndian.Uint16(rest[0:])
		setLen := int(binary.BigEndian.Uint16(rest[2:]))
		if setLen < SetHeaderLen || setLen > len(rest) {
			return nil, fmt.Errorf("ipfix: bad set length %d", setLen)
		}
		body := rest[SetHeaderLen:setLen]
		switch {
		case setID == TemplateSetID:
			ts, err := parseTemplates(body)
			if err != nil {
				return nil, err
			}
			msg.Templates = append(msg.Templates, ts...)
		case setID == OptionsTemplateSetID:
			// Options data is irrelevant to IPD; skip.
		case setID >= MinDataSetID:
			msg.DataSets = append(msg.DataSets, DataSet{TemplateID: setID, Payload: body})
		default:
			return nil, fmt.Errorf("ipfix: reserved set id %d", setID)
		}
		rest = rest[setLen:]
	}
	return msg, nil
}

func parseTemplates(b []byte) ([]Template, error) {
	var out []Template
	for len(b) >= 4 {
		id := binary.BigEndian.Uint16(b[0:])
		count := int(binary.BigEndian.Uint16(b[2:]))
		if id < MinDataSetID {
			return nil, fmt.Errorf("ipfix: template id %d below 256", id)
		}
		b = b[4:]
		if count == 0 {
			// Template withdrawal: represented as a template with no
			// fields.
			out = append(out, Template{ID: id})
			continue
		}
		if len(b) < 4*count {
			return nil, fmt.Errorf("ipfix: truncated template %d", id)
		}
		t := Template{ID: id, Fields: make([]FieldSpec, 0, count)}
		for i := 0; i < count; i++ {
			ie := binary.BigEndian.Uint16(b[0:])
			length := binary.BigEndian.Uint16(b[2:])
			if ie&0x8000 != 0 {
				return nil, fmt.Errorf("ipfix: enterprise element %d not supported", ie&0x7fff)
			}
			if length == 0xFFFF || length == 0 {
				return nil, fmt.Errorf("ipfix: variable/zero length field %d", ie)
			}
			t.Fields = append(t.Fields, FieldSpec{ID: ie, Length: length})
			b = b[4:]
		}
		out = append(out, t)
	}
	if len(b) != 0 && len(b) < 4 {
		// Trailing padding (up to 3 bytes) is legal.
		for _, x := range b {
			if x != 0 {
				return nil, fmt.Errorf("ipfix: non-zero template padding")
			}
		}
	}
	return out, nil
}

// Cache resolves data sets against previously seen templates, keyed by
// observation domain (one Cache per exporter).
type Cache struct {
	templates map[uint32]map[uint16]Template
}

// NewCache returns an empty template cache.
func NewCache() *Cache {
	return &Cache{templates: make(map[uint32]map[uint16]Template)}
}

// Add registers (or withdraws) the message's templates.
func (c *Cache) Add(domain uint32, ts []Template) {
	m := c.templates[domain]
	if m == nil {
		m = make(map[uint16]Template)
		c.templates[domain] = m
	}
	for _, t := range ts {
		if len(t.Fields) == 0 {
			delete(m, t.ID)
			continue
		}
		m[t.ID] = t
	}
}

// Lookup returns the template for (domain, id).
func (c *Cache) Lookup(domain uint32, id uint16) (Template, bool) {
	t, ok := c.templates[domain][id]
	return t, ok
}

// Len returns the number of cached templates across domains.
func (c *Cache) Len() int {
	n := 0
	for _, m := range c.templates {
		n += len(m)
	}
	return n
}

// DecodeRecords decodes a data set against its template into flow records
// attributed to router. Records lacking a source address are skipped and
// counted in the second return value. Up to 3 bytes of trailing padding are
// tolerated.
func DecodeRecords(msg *Message, t Template, ds DataSet, router flow.RouterID) ([]flow.Record, int, error) {
	recLen := t.recordLen()
	if recLen == 0 {
		return nil, 0, fmt.Errorf("ipfix: empty template %d", t.ID)
	}
	var out []flow.Record
	skipped := 0
	b := ds.Payload
	for len(b) >= recLen {
		rec, ok := decodeOne(msg, t, b[:recLen], router)
		if ok {
			out = append(out, rec)
		} else {
			skipped++
		}
		b = b[recLen:]
	}
	if len(b) >= 4 {
		return nil, 0, fmt.Errorf("ipfix: %d trailing bytes in data set %d", len(b), t.ID)
	}
	return out, skipped, nil
}

func decodeOne(msg *Message, t Template, b []byte, router flow.RouterID) (flow.Record, bool) {
	rec := flow.Record{Ts: msg.ExportTime, In: flow.Ingress{Router: router}}
	off := 0
	for _, f := range t.Fields {
		v := b[off : off+int(f.Length)]
		switch f.ID {
		case IESourceIPv4Address:
			if f.Length == 4 {
				rec.Src = netip.AddrFrom4([4]byte(v))
			}
		case IESourceIPv6Address:
			if f.Length == 16 {
				rec.Src = netip.AddrFrom16([16]byte(v))
			}
		case IEDestinationIPv4Address:
			if f.Length == 4 {
				rec.Dst = netip.AddrFrom4([4]byte(v))
			}
		case IEDestinationIPv6Address:
			if f.Length == 16 {
				rec.Dst = netip.AddrFrom16([16]byte(v))
			}
		case IEIngressInterface:
			rec.In.Iface = flow.IfaceID(beUint(v))
		case IEOctetDeltaCount:
			rec.Bytes = clampU32(beUint(v))
		case IEPacketDeltaCount:
			rec.Packets = clampU32(beUint(v))
		case IEFlowStartMilliseconds:
			if ms := beUint(v); ms > 0 {
				rec.Ts = time.UnixMilli(int64(ms)).UTC()
			}
		}
		off += int(f.Length)
	}
	if !rec.Src.IsValid() {
		return flow.Record{}, false
	}
	return rec, true
}

func beUint(b []byte) uint64 {
	var v uint64
	for _, x := range b {
		v = v<<8 | uint64(x)
	}
	return v
}

func clampU32(v uint64) uint32 {
	if v > 1<<32-1 {
		return 1<<32 - 1
	}
	return uint32(v)
}
