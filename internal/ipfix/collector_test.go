package ipfix

import (
	"context"
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"ipd/internal/flow"
)

func TestCollectorValidation(t *testing.T) {
	if _, err := NewCollector(nil); err == nil {
		t.Error("nil sink should fail")
	}
	c, _ := NewCollector(func(flow.Record) {})
	if err := c.Serve(context.Background()); err == nil {
		t.Error("Serve before Listen should fail")
	}
	if _, err := c.Listen("bogus:addr:here"); err == nil {
		t.Error("bad addr should fail")
	}
}

func TestCollectorEndToEndUDP(t *testing.T) {
	var mu sync.Mutex
	var got []flow.Record
	c, err := NewCollector(func(r flow.Record) {
		mu.Lock()
		got = append(got, r)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	addrPort, err := c.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- c.Serve(ctx) }()

	conn, err := net.Dial("udp", addrPort.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	local := conn.LocalAddr().(*net.UDPAddr).AddrPort().Addr()
	c.RegisterExporter(local, 12)

	mb := NewMessageBuilder(5)
	tmplMsg, err := mb.TemplateMessage(exportTime, DefaultTemplateV4, DefaultTemplateV6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(tmplMsg); err != nil {
		t.Fatal(err)
	}
	v4Msg, err := mb.DataMessage(exportTime, DefaultTemplateV4, []flow.Record{v4Record(1), v4Record(2)})
	if err != nil {
		t.Fatal(err)
	}
	v6Msg, err := mb.DataMessage(exportTime, DefaultTemplateV6, []flow.Record{v6Record(1)})
	if err != nil {
		t.Fatal(err)
	}
	// Small sleep between datagrams is unnecessary; UDP loopback preserves
	// them, but templates must arrive first, so write in order.
	if _, err := conn.Write(v4Msg); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(v6Msg); err != nil {
		t.Fatal(err)
	}

	deadline := time.After(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == 3 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("received %d/3 records", n)
		case <-time.After(10 * time.Millisecond):
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if got[0].In.Router != 12 {
		t.Errorf("router = %d", got[0].In.Router)
	}
	sawV6 := false
	for _, r := range got {
		if r.IsIPv6() {
			sawV6 = true
		}
	}
	if !sawV6 {
		t.Error("no IPv6 record made it through")
	}
	if c.Stats().Messages.Load() != 3 {
		t.Errorf("messages = %d", c.Stats().Messages.Load())
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestCollectorDataBeforeTemplateDropped(t *testing.T) {
	c, _ := NewCollector(func(flow.Record) { t.Error("sink must not be called") })
	src := netip.MustParseAddr("192.0.2.9")
	c.RegisterExporter(src, 1)
	mb := NewMessageBuilder(1)
	dataMsg, err := mb.DataMessage(exportTime, DefaultTemplateV4, []flow.Record{v4Record(1)})
	if err != nil {
		t.Fatal(err)
	}
	c.HandleMessage(dataMsg, src)
	if c.Stats().UnknownTemplate.Load() != 1 {
		t.Errorf("unknown-template = %d", c.Stats().UnknownTemplate.Load())
	}
}

func TestCollectorUnknownExporterAndMalformed(t *testing.T) {
	c, _ := NewCollector(func(flow.Record) { t.Error("sink must not be called") })
	mb := NewMessageBuilder(1)
	msg, _ := mb.TemplateMessage(exportTime, DefaultTemplateV4)
	c.HandleMessage(msg, netip.MustParseAddr("192.0.2.1"))
	if c.Stats().UnknownExporter.Load() != 1 {
		t.Error("unknown exporter not counted")
	}
	c.RegisterExporter(netip.MustParseAddr("192.0.2.1"), 1)
	c.HandleMessage(msg[:7], netip.MustParseAddr("192.0.2.1"))
	if c.Stats().Malformed.Load() != 1 {
		t.Error("malformed not counted")
	}
}

// TestCollectorContainsSinkPanic pins the receive-loop containment: a panic
// out of the sink (or decoder) must not escape HandleMessage — the message
// is abandoned, counted in Stats().Panics, and the next one flows normally.
func TestCollectorContainsSinkPanic(t *testing.T) {
	calls := 0
	c, _ := NewCollector(func(flow.Record) {
		calls++
		if calls == 1 {
			panic("poisoned record")
		}
	})
	src := netip.MustParseAddr("192.0.2.9")
	c.RegisterExporter(src, 1)
	mb := NewMessageBuilder(1)
	tmplMsg, err := mb.TemplateMessage(exportTime, DefaultTemplateV4)
	if err != nil {
		t.Fatal(err)
	}
	c.HandleMessage(tmplMsg, src)
	dataMsg, err := mb.DataMessage(exportTime, DefaultTemplateV4, []flow.Record{v4Record(1)})
	if err != nil {
		t.Fatal(err)
	}
	c.HandleMessage(dataMsg, src) // sink panics: contained
	if got := c.Stats().Panics.Load(); got != 1 {
		t.Fatalf("Panics = %d, want 1", got)
	}
	c.HandleMessage(dataMsg, src) // collector still serves
	if calls != 2 {
		t.Errorf("sink calls = %d, want 2 (loop survived the panic)", calls)
	}
}
