package ipfix

import (
	"encoding/binary"
	"fmt"

	"ipd/internal/flow"
)

// DefaultTemplateV4 and DefaultTemplateV6 are the record layouts the
// bundled exporter emits (and that ipd-collector's tests exercise).
var (
	DefaultTemplateV4 = Template{ID: 256, Fields: []FieldSpec{
		{ID: IESourceIPv4Address, Length: 4},
		{ID: IEDestinationIPv4Address, Length: 4},
		{ID: IEIngressInterface, Length: 4},
		{ID: IEOctetDeltaCount, Length: 8},
		{ID: IEPacketDeltaCount, Length: 8},
		{ID: IEFlowStartMilliseconds, Length: 8},
	}}
	DefaultTemplateV6 = Template{ID: 257, Fields: []FieldSpec{
		{ID: IESourceIPv6Address, Length: 16},
		{ID: IEDestinationIPv6Address, Length: 16},
		{ID: IEIngressInterface, Length: 4},
		{ID: IEOctetDeltaCount, Length: 8},
		{ID: IEPacketDeltaCount, Length: 8},
		{ID: IEFlowStartMilliseconds, Length: 8},
	}}
)

// MessageBuilder assembles IPFIX messages for one observation domain.
// It is the export side used by tests and lab tooling (real deployments
// receive from router exporters).
type MessageBuilder struct {
	domain   uint32
	sequence uint32
}

// NewMessageBuilder returns a builder for the given observation domain.
func NewMessageBuilder(domain uint32) *MessageBuilder {
	return &MessageBuilder{domain: domain}
}

// TemplateMessage encodes a message carrying the given templates.
func (mb *MessageBuilder) TemplateMessage(exportTime uint32, ts ...Template) ([]byte, error) {
	var body []byte
	for _, t := range ts {
		if t.ID < MinDataSetID {
			return nil, fmt.Errorf("ipfix: template id %d below 256", t.ID)
		}
		var rec []byte
		rec = binary.BigEndian.AppendUint16(rec, t.ID)
		rec = binary.BigEndian.AppendUint16(rec, uint16(len(t.Fields)))
		for _, f := range t.Fields {
			rec = binary.BigEndian.AppendUint16(rec, f.ID)
			rec = binary.BigEndian.AppendUint16(rec, f.Length)
		}
		body = append(body, rec...)
	}
	// Template records do not advance the sequence counter (RFC 7011
	// §3.1: Sequence Number counts exported data records only).
	return mb.finish(exportTime, TemplateSetID, body, 0)
}

// DataMessage encodes a message carrying records under the given template.
// All records must match the template's family; mismatching records are
// rejected.
func (mb *MessageBuilder) DataMessage(exportTime uint32, t Template, recs []flow.Record) ([]byte, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("ipfix: empty data message")
	}
	var body []byte
	for _, rec := range recs {
		enc, err := encodeRecord(t, rec)
		if err != nil {
			return nil, err
		}
		body = append(body, enc...)
	}
	return mb.finish(exportTime, t.ID, body, len(recs))
}

// finish frames the message. The header Sequence field carries the count
// of data records exported before this message (RFC 7011 §3.1), so it
// advances by dataRecords — zero for template messages — not per message.
func (mb *MessageBuilder) finish(exportTime uint32, setID uint16, body []byte, dataRecords int) ([]byte, error) {
	msgLen := MessageHeaderLen + SetHeaderLen + len(body)
	if msgLen > 0xFFFF {
		return nil, fmt.Errorf("ipfix: message too large (%d bytes)", msgLen)
	}
	out := make([]byte, 0, msgLen)
	out = binary.BigEndian.AppendUint16(out, Version)
	out = binary.BigEndian.AppendUint16(out, uint16(msgLen))
	out = binary.BigEndian.AppendUint32(out, exportTime)
	out = binary.BigEndian.AppendUint32(out, mb.sequence)
	out = binary.BigEndian.AppendUint32(out, mb.domain)
	out = binary.BigEndian.AppendUint16(out, setID)
	out = binary.BigEndian.AppendUint16(out, uint16(SetHeaderLen+len(body)))
	out = append(out, body...)
	mb.sequence += uint32(dataRecords)
	return out, nil
}

// appendUintN appends v big-endian in exactly n bytes (truncating high
// bits if v does not fit — the template's declared width wins).
func appendUintN(out []byte, v uint64, n int) []byte {
	for i := n - 1; i >= 0; i-- {
		out = append(out, byte(v>>(8*i)))
	}
	return out
}

func encodeRecord(t Template, rec flow.Record) ([]byte, error) {
	var out []byte
	for _, f := range t.Fields {
		switch f.ID {
		case IESourceIPv4Address:
			a := rec.Src.Unmap()
			if !a.Is4() {
				return nil, fmt.Errorf("ipfix: record src %v does not fit IPv4 template", rec.Src)
			}
			b := a.As4()
			out = append(out, b[:]...)
		case IESourceIPv6Address:
			if !rec.Src.IsValid() || rec.Src.Unmap().Is4() {
				return nil, fmt.Errorf("ipfix: record src %v does not fit IPv6 template", rec.Src)
			}
			b := rec.Src.As16()
			out = append(out, b[:]...)
		case IEDestinationIPv4Address:
			var b [4]byte
			if rec.Dst.IsValid() && rec.Dst.Unmap().Is4() {
				b = rec.Dst.Unmap().As4()
			}
			out = append(out, b[:]...)
		case IEDestinationIPv6Address:
			var b [16]byte
			if rec.Dst.IsValid() && !rec.Dst.Unmap().Is4() {
				b = rec.Dst.As16()
			}
			out = append(out, b[:]...)
		case IEIngressInterface:
			out = appendUintN(out, uint64(rec.In.Iface), int(f.Length))
		case IEOctetDeltaCount:
			out = appendUintN(out, uint64(rec.Bytes), int(f.Length))
		case IEPacketDeltaCount:
			out = appendUintN(out, uint64(rec.Packets), int(f.Length))
		case IEFlowStartMilliseconds:
			out = appendUintN(out, uint64(rec.Ts.UnixMilli()), int(f.Length))
		default:
			// Unknown elements encode as zeros of the declared length.
			out = append(out, make([]byte, f.Length)...)
		}
	}
	return out, nil
}
