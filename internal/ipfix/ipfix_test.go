package ipfix

import (
	"encoding/binary"
	"net/netip"
	"testing"
	"time"

	"ipd/internal/flow"
)

var exportTime = uint32(1605571200)

func v4Record(i byte) flow.Record {
	return flow.Record{
		Ts:      time.UnixMilli(1605571200123).UTC(),
		Src:     netip.AddrFrom4([4]byte{203, 0, 113, i}),
		Dst:     netip.AddrFrom4([4]byte{100, 64, 1, 1}),
		In:      flow.Ingress{Iface: 7},
		Bytes:   1500,
		Packets: 2,
	}
}

func v6Record(i byte) flow.Record {
	return flow.Record{
		Ts:      time.UnixMilli(1605571200456).UTC(),
		Src:     netip.MustParseAddr("2001:db8::1").Prev().Next(), // normalized
		Dst:     netip.MustParseAddr("2001:db8:ffff::9"),
		In:      flow.Ingress{Iface: 9},
		Bytes:   900,
		Packets: 1,
	}
}

func TestTemplateThenDataRoundTrip(t *testing.T) {
	mb := NewMessageBuilder(42)
	tmplMsg, err := mb.TemplateMessage(exportTime, DefaultTemplateV4, DefaultTemplateV6)
	if err != nil {
		t.Fatal(err)
	}
	recs := []flow.Record{v4Record(1), v4Record(2), v4Record(3)}
	dataMsg, err := mb.DataMessage(exportTime, DefaultTemplateV4, recs)
	if err != nil {
		t.Fatal(err)
	}

	cache := NewCache()
	m1, err := DecodeMessage(tmplMsg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m1.Templates) != 2 || len(m1.DataSets) != 0 {
		t.Fatalf("template message: %+v", m1)
	}
	cache.Add(m1.DomainID, m1.Templates)
	if cache.Len() != 2 {
		t.Fatalf("cache len = %d", cache.Len())
	}

	m2, err := DecodeMessage(dataMsg)
	if err != nil {
		t.Fatal(err)
	}
	// The template message exported no data records, so the first data
	// message still carries sequence 0 (RFC 7011 §3.1).
	if m2.DomainID != 42 || m2.Sequence != 0 {
		t.Errorf("header: domain=%d seq=%d", m2.DomainID, m2.Sequence)
	}
	if len(m2.DataSets) != 1 {
		t.Fatalf("data sets = %d", len(m2.DataSets))
	}
	tmpl, ok := cache.Lookup(m2.DomainID, m2.DataSets[0].TemplateID)
	if !ok {
		t.Fatal("template not cached")
	}
	out, skipped, err := DecodeRecords(m2, tmpl, m2.DataSets[0], 9)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || len(out) != 3 {
		t.Fatalf("decoded %d records, %d skipped", len(out), skipped)
	}
	want := recs[0]
	got := out[0]
	if got.Src != want.Src || got.Dst != want.Dst {
		t.Errorf("addresses: %+v", got)
	}
	if got.In != (flow.Ingress{Router: 9, Iface: 7}) {
		t.Errorf("ingress = %v", got.In)
	}
	if got.Bytes != 1500 || got.Packets != 2 {
		t.Errorf("counters: %+v", got)
	}
	if !got.Ts.Equal(want.Ts) {
		t.Errorf("ts = %v, want %v (flowStartMilliseconds)", got.Ts, want.Ts)
	}
}

// TestSequenceCountsDataRecords is the RFC 7011 §3.1 regression test:
// the message header Sequence is the cumulative count of data records in
// previous messages of the domain — template messages never advance it,
// and data messages advance it by their record count, not by one.
func TestSequenceCountsDataRecords(t *testing.T) {
	mb := NewMessageBuilder(9)
	seqOf := func(msg []byte) uint32 {
		m, err := DecodeMessage(msg)
		if err != nil {
			t.Fatal(err)
		}
		return m.Sequence
	}
	t1, _ := mb.TemplateMessage(exportTime, DefaultTemplateV4, DefaultTemplateV6)
	if got := seqOf(t1); got != 0 {
		t.Fatalf("first template message seq = %d, want 0", got)
	}
	d1, _ := mb.DataMessage(exportTime, DefaultTemplateV4, []flow.Record{v4Record(1), v4Record(2), v4Record(3)})
	if got := seqOf(d1); got != 0 {
		t.Fatalf("first data message seq = %d, want 0 (templates must not advance it)", got)
	}
	t2, _ := mb.TemplateMessage(exportTime, DefaultTemplateV4) // periodic re-announce
	if got := seqOf(t2); got != 3 {
		t.Fatalf("template message seq = %d, want 3", got)
	}
	d2, _ := mb.DataMessage(exportTime, DefaultTemplateV4, []flow.Record{v4Record(4), v4Record(5)})
	if got := seqOf(d2); got != 3 {
		t.Fatalf("second data message seq = %d, want 3 (prior data records)", got)
	}
	d3, _ := mb.DataMessage(exportTime, DefaultTemplateV4, []flow.Record{v4Record(6)})
	if got := seqOf(d3); got != 5 {
		t.Fatalf("third data message seq = %d, want 5", got)
	}
}

func TestIPv6RoundTrip(t *testing.T) {
	mb := NewMessageBuilder(7)
	cache := NewCache()
	tmplMsg, _ := mb.TemplateMessage(exportTime, DefaultTemplateV6)
	m, err := DecodeMessage(tmplMsg)
	if err != nil {
		t.Fatal(err)
	}
	cache.Add(m.DomainID, m.Templates)

	dataMsg, err := mb.DataMessage(exportTime, DefaultTemplateV6, []flow.Record{v6Record(1)})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := DecodeMessage(dataMsg)
	if err != nil {
		t.Fatal(err)
	}
	tmpl, _ := cache.Lookup(7, m2.DataSets[0].TemplateID)
	out, _, err := DecodeRecords(m2, tmpl, m2.DataSets[0], 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Src != netip.MustParseAddr("2001:db8::1") {
		t.Fatalf("v6 decode: %+v", out)
	}
	if out[0].Dst != netip.MustParseAddr("2001:db8:ffff::9") {
		t.Errorf("v6 dst = %v", out[0].Dst)
	}
}

func TestFamilyMismatchRejected(t *testing.T) {
	mb := NewMessageBuilder(1)
	if _, err := mb.DataMessage(exportTime, DefaultTemplateV4, []flow.Record{v6Record(1)}); err == nil {
		t.Error("v6 record under v4 template should fail")
	}
	if _, err := mb.DataMessage(exportTime, DefaultTemplateV6, []flow.Record{v4Record(1)}); err == nil {
		t.Error("v4 record under v6 template should fail")
	}
	if _, err := mb.DataMessage(exportTime, DefaultTemplateV4, nil); err == nil {
		t.Error("empty data message should fail")
	}
	if _, err := mb.TemplateMessage(exportTime, Template{ID: 100}); err == nil {
		t.Error("template id < 256 should fail")
	}
}

func TestUnknownElementsSkipped(t *testing.T) {
	// A template with an element the converter does not know (e.g.
	// protocolIdentifier=4, 1 byte): decoding still yields the record.
	tmpl := Template{ID: 300, Fields: []FieldSpec{
		{ID: IESourceIPv4Address, Length: 4},
		{ID: 4, Length: 1}, // protocolIdentifier
		{ID: IEOctetDeltaCount, Length: 4},
	}}
	mb := NewMessageBuilder(1)
	msg, err := mb.DataMessage(exportTime, tmpl, []flow.Record{v4Record(5)})
	if err != nil {
		t.Fatal(err)
	}
	m, err := DecodeMessage(msg)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := DecodeRecords(m, tmpl, m.DataSets[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Src != netip.AddrFrom4([4]byte{203, 0, 113, 5}) {
		t.Fatalf("decode with unknown IE: %+v", out)
	}
	// 4-byte octetDeltaCount decodes via beUint.
	if out[0].Bytes != 1500 {
		t.Errorf("bytes = %d", out[0].Bytes)
	}
	// Without flowStartMilliseconds the export time is used.
	if !out[0].Ts.Equal(time.Unix(int64(exportTime), 0).UTC()) {
		t.Errorf("ts = %v", out[0].Ts)
	}
}

func TestTemplateWithdrawal(t *testing.T) {
	cache := NewCache()
	cache.Add(1, []Template{DefaultTemplateV4})
	if _, ok := cache.Lookup(1, 256); !ok {
		t.Fatal("template missing")
	}
	// A zero-field template withdraws.
	cache.Add(1, []Template{{ID: 256}})
	if _, ok := cache.Lookup(1, 256); ok {
		t.Fatal("withdrawal ignored")
	}
	// Domains are independent.
	cache.Add(2, []Template{DefaultTemplateV4})
	if _, ok := cache.Lookup(1, 256); ok {
		t.Fatal("cross-domain leak")
	}
}

func TestDecodeMessageValidation(t *testing.T) {
	mb := NewMessageBuilder(1)
	good, _ := mb.TemplateMessage(exportTime, DefaultTemplateV4)

	badVersion := append([]byte(nil), good...)
	binary.BigEndian.PutUint16(badVersion[0:], 9)
	badLen := append([]byte(nil), good...)
	binary.BigEndian.PutUint16(badLen[2:], uint16(len(good)+10))
	badSet := append([]byte(nil), good...)
	binary.BigEndian.PutUint16(badSet[16:], 5) // reserved set id

	cases := map[string][]byte{
		"short":       good[:10],
		"bad version": badVersion,
		"bad length":  badLen,
		"reserved id": badSet,
	}
	for name, b := range cases {
		if _, err := DecodeMessage(b); err == nil {
			t.Errorf("%s should fail", name)
		}
	}
	if _, err := DecodeMessage(good); err != nil {
		t.Errorf("good message rejected: %v", err)
	}
}

func TestEnterpriseAndVariableFieldsRejected(t *testing.T) {
	// Hand-build a template set with an enterprise bit.
	build := func(ie, length uint16) []byte {
		var body []byte
		body = binary.BigEndian.AppendUint16(body, 256) // template id
		body = binary.BigEndian.AppendUint16(body, 1)   // field count
		body = binary.BigEndian.AppendUint16(body, ie)
		body = binary.BigEndian.AppendUint16(body, length)
		var msg []byte
		msg = binary.BigEndian.AppendUint16(msg, Version)
		msg = binary.BigEndian.AppendUint16(msg, uint16(MessageHeaderLen+SetHeaderLen+len(body)))
		msg = binary.BigEndian.AppendUint32(msg, exportTime)
		msg = binary.BigEndian.AppendUint32(msg, 0)
		msg = binary.BigEndian.AppendUint32(msg, 1)
		msg = binary.BigEndian.AppendUint16(msg, TemplateSetID)
		msg = binary.BigEndian.AppendUint16(msg, uint16(SetHeaderLen+len(body)))
		return append(msg, body...)
	}
	if _, err := DecodeMessage(build(0x8000|8, 4)); err == nil {
		t.Error("enterprise element should be rejected")
	}
	if _, err := DecodeMessage(build(8, 0xFFFF)); err == nil {
		t.Error("variable-length element should be rejected")
	}
}

func TestDataBeforeTemplate(t *testing.T) {
	mb := NewMessageBuilder(1)
	dataMsg, err := mb.DataMessage(exportTime, DefaultTemplateV4, []flow.Record{v4Record(1)})
	if err != nil {
		t.Fatal(err)
	}
	m, err := DecodeMessage(dataMsg)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache()
	if _, ok := cache.Lookup(m.DomainID, m.DataSets[0].TemplateID); ok {
		t.Fatal("template should be unknown before it is announced")
	}
}

func FuzzDecodeMessage(f *testing.F) {
	mb := NewMessageBuilder(1)
	tm, _ := mb.TemplateMessage(exportTime, DefaultTemplateV4)
	dm, _ := mb.DataMessage(exportTime, DefaultTemplateV4, []flow.Record{v4Record(1)})
	f.Add(tm)
	f.Add(dm)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMessage(data)
		if err != nil {
			return
		}
		for _, tmpl := range m.Templates {
			_ = tmpl.recordLen()
		}
		for _, ds := range m.DataSets {
			// Decoding against an arbitrary known template must not panic.
			_, _, _ = DecodeRecords(m, DefaultTemplateV4, ds, 1)
		}
	})
}
