package ipfix

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"ipd/internal/flow"
)

// HealthObserver receives per-message transport-header accounting that the
// record sink cannot see: the RFC 7011 sequence counter (counts data
// records sent before this message), the export timestamp, and template
// activity. dataRecords is the count of data records decoded from sets with
// known templates (including per-record skips); unknownSets counts data
// sets whose record totals are unknowable because no template matched.
// Called once per accepted message, after exporter attribution, from the
// receive goroutine — implementations must be fast and must not block.
type HealthObserver interface {
	ObserveIPFIX(router flow.RouterID, domain, seq uint32, dataRecords, templateRecords, unknownSets int, exportTime time.Time)
}

// CollectorStats counts collector activity.
type CollectorStats struct {
	Messages        atomic.Uint64
	Records         atomic.Uint64
	Malformed       atomic.Uint64
	UnknownExporter atomic.Uint64
	// UnknownTemplate counts data sets that arrived before their template
	// (they are dropped, as RFC 7011 collectors commonly do over UDP).
	UnknownTemplate atomic.Uint64
	SkippedRecords  atomic.Uint64
	// Panics counts messages whose decode or sink handoff panicked; the
	// receive loop recovers and keeps serving (the message is abandoned).
	Panics atomic.Uint64
}

// Collector receives IPFIX messages over UDP, resolves templates per
// exporter, and delivers flow records to a sink. It is the IPv6-capable
// sibling of the NetFlow v5 collector.
type Collector struct {
	mu        sync.RWMutex
	exporters map[netip.Addr]flow.RouterID
	caches    map[netip.Addr]*Cache

	sink   func(flow.Record)
	health HealthObserver
	stats  CollectorStats
	conn   *net.UDPConn
}

// NewCollector returns a collector delivering records to sink.
func NewCollector(sink func(flow.Record)) (*Collector, error) {
	if sink == nil {
		return nil, fmt.Errorf("ipfix: sink must not be nil")
	}
	return &Collector{
		exporters: make(map[netip.Addr]flow.RouterID),
		caches:    make(map[netip.Addr]*Cache),
		sink:      sink,
	}, nil
}

// RegisterExporter maps an export source address to a router.
func (c *Collector) RegisterExporter(addr netip.Addr, router flow.RouterID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.exporters[addr.Unmap()] = router
}

// SetHealth attaches a health observer fed once per accepted message.
// Call before Serve.
func (c *Collector) SetHealth(h HealthObserver) { c.health = h }

// Stats returns the live counters.
func (c *Collector) Stats() *CollectorStats { return &c.stats }

// Listen binds the UDP socket (the IPFIX registered port is 4739).
func (c *Collector) Listen(addr string) (netip.AddrPort, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return netip.AddrPort{}, err
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return netip.AddrPort{}, err
	}
	c.conn = conn
	return conn.LocalAddr().(*net.UDPAddr).AddrPort(), nil
}

// Serve reads messages until ctx is cancelled.
func (c *Collector) Serve(ctx context.Context) error {
	if c.conn == nil {
		return fmt.Errorf("ipfix: Serve before Listen")
	}
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			c.conn.Close()
		case <-done:
		}
	}()
	buf := make([]byte, 1<<16)
	for {
		n, remote, err := c.conn.ReadFromUDPAddrPort(buf)
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		c.HandleMessage(buf[:n], remote.Addr())
	}
}

// HandleMessage processes one raw IPFIX message from the given exporter
// address (exposed for socketless pipelines and tests). A panic while
// decoding or sinking is contained: the message is abandoned,
// Stats().Panics counts it, and the receive loop keeps serving.
func (c *Collector) HandleMessage(b []byte, from netip.Addr) {
	defer func() {
		if recover() != nil {
			c.stats.Panics.Add(1)
		}
	}()
	from = from.Unmap()
	c.mu.RLock()
	router, ok := c.exporters[from]
	c.mu.RUnlock()
	if !ok {
		c.stats.UnknownExporter.Add(1)
		return
	}
	msg, err := DecodeMessage(b)
	if err != nil {
		c.stats.Malformed.Add(1)
		return
	}
	c.mu.Lock()
	cache := c.caches[from]
	if cache == nil {
		cache = NewCache()
		c.caches[from] = cache
	}
	cache.Add(msg.DomainID, msg.Templates)
	c.mu.Unlock()

	c.stats.Messages.Add(1)
	dataRecords, unknownSets := 0, 0
	for _, ds := range msg.DataSets {
		c.mu.RLock()
		tmpl, ok := cache.Lookup(msg.DomainID, ds.TemplateID)
		c.mu.RUnlock()
		if !ok {
			c.stats.UnknownTemplate.Add(1)
			unknownSets++
			continue
		}
		recs, skipped, err := DecodeRecords(msg, tmpl, ds, router)
		if err != nil {
			c.stats.Malformed.Add(1)
			continue
		}
		c.stats.SkippedRecords.Add(uint64(skipped))
		// Skipped records still occupied sequence numbers on the exporter.
		dataRecords += len(recs) + skipped
		for _, rec := range recs {
			c.sink(rec)
			c.stats.Records.Add(1)
		}
	}
	if c.health != nil {
		c.health.ObserveIPFIX(router, msg.DomainID, msg.Sequence, dataRecords, len(msg.Templates), unknownSets, msg.ExportTime)
	}
}
