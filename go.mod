module ipd

go 1.22
