// Command flowgen generates a synthetic tier-1 ISP flow trace in the binary
// trace format (or CSV), standing in for the border-router NetFlow feeds of
// the paper's deployment. The generated stream embeds the full ground-truth
// structure of the synthetic scenario (CDN remaps, maintenance windows,
// violations, diurnal load).
//
// Usage:
//
//	flowgen -minutes 30 -rate 5000 -seed 1 -o trace.ipd
//	flowgen -minutes 5 -format csv -o - | head
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"ipd"
	"ipd/internal/flow"
)

func main() {
	var (
		minutes = flag.Int("minutes", 30, "trace length in virtual minutes")
		rate    = flag.Int("rate", 5000, "average sampled flows per minute")
		seed    = flag.Int64("seed", 1, "scenario and stream seed")
		noise   = flag.Float64("noise", 0.002, "fraction of flows entering a random wrong link")
		format  = flag.String("format", "binary", "output format: binary or csv")
		out     = flag.String("o", "-", "output file ('-' = stdout)")
		startAt = flag.Duration("offset", 0, "virtual offset into the scenario (e.g. 200h)")
		diurnal = flag.Bool("diurnal", true, "apply the diurnal volume pattern")
	)
	flag.Parse()

	if err := run(*minutes, *rate, *seed, *noise, *format, *out, *startAt, *diurnal); err != nil {
		fmt.Fprintln(os.Stderr, "flowgen:", err)
		os.Exit(1)
	}
}

func run(minutes, rate int, seed int64, noise float64, format, out string, offset time.Duration, diurnal bool) error {
	spec := ipd.DefaultSimSpec()
	spec.Seed = seed
	scn, err := ipd.NewSimScenario(spec)
	if err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	cfg := ipd.SimGenConfig{
		FlowsPerMinute: rate,
		NoiseFraction:  noise,
		Seed:           seed,
		Diurnal:        diurnal,
	}
	start := scn.Start.Add(offset)
	end := start.Add(time.Duration(minutes) * time.Minute)

	count := 0
	switch format {
	case "binary":
		tw := ipd.NewTraceWriter(w)
		err = scn.Stream(start, end, cfg, func(rec ipd.Record) bool {
			if werr := tw.Write(rec); werr != nil {
				err = werr
				return false
			}
			count++
			return true
		})
		if err != nil {
			return err
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	case "csv":
		bw := bufio.NewWriter(w)
		fmt.Fprintln(bw, "# ts_unix_nanos,src,dst,router,iface,bytes,packets")
		var buf []byte
		err = scn.Stream(start, end, cfg, func(rec ipd.Record) bool {
			buf = flow.AppendCSV(buf[:0], rec)
			if _, werr := bw.Write(buf); werr != nil {
				err = werr
				return false
			}
			count++
			return true
		})
		if err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown format %q (want binary or csv)", format)
	}
	fmt.Fprintf(os.Stderr, "flowgen: wrote %d records covering %s - %s\n",
		count, start.Format(time.RFC3339), end.Format(time.RFC3339))
	return nil
}
