// Command flowgen generates a synthetic tier-1 ISP flow trace in the binary
// trace format (or CSV), standing in for the border-router NetFlow feeds of
// the paper's deployment. The generated stream embeds the full ground-truth
// structure of the synthetic scenario (CDN remaps, maintenance windows,
// violations, diurnal load).
//
// Usage:
//
//	flowgen -minutes 30 -rate 5000 -seed 1 -o trace.ipd
//	flowgen -minutes 5 -format csv -o - | head
//
// Exporter faults (deterministic, seeded by -fault-seed) degrade named
// routers' feeds to exercise the exporter-health detectors downstream:
//
//	flowgen -minutes 60 -fault-loss 2:0.3 -fault-skew 4:10m \
//	        -fault-silence 9:10m-30m -o degraded.ipd
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net/netip"
	"os"
	"strconv"
	"strings"
	"time"

	"ipd"
	"ipd/internal/flow"
)

func main() {
	var (
		minutes = flag.Int("minutes", 30, "trace length in virtual minutes")
		rate    = flag.Int("rate", 5000, "average sampled flows per minute")
		seed    = flag.Int64("seed", 1, "scenario and stream seed")
		noise   = flag.Float64("noise", 0.002, "fraction of flows entering a random wrong link")
		format  = flag.String("format", "binary", "output format: binary or csv")
		out     = flag.String("o", "-", "output file ('-' = stdout)")
		startAt = flag.Duration("offset", 0, "virtual offset into the scenario (e.g. 200h)")
		diurnal = flag.Bool("diurnal", true, "apply the diurnal volume pattern")

		hotFraction = flag.Float64("hot-fraction", 0, "fraction of flows sourced from the hot prefix (0 disables)")
		hotPrefix   = flag.String("hot-prefix", "", "elephant source aggregate (default: first /24 of the first AS)")

		faultSeed    = flag.Uint64("fault-seed", 1, "seed for fault coin flips")
		faultLoss    = flag.String("fault-loss", "", "per-router record loss, e.g. 2:0.3,7:0.1")
		faultSkew    = flag.String("fault-skew", "", "per-router export-clock skew, e.g. 4:10m")
		faultSilence = flag.String("fault-silence", "", "per-router silent window as offsets, e.g. 9:10m-30m")
	)
	flag.Parse()

	faults, err := parseFaults(*faultSeed, *faultLoss, *faultSkew, *faultSilence)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flowgen:", err)
		os.Exit(1)
	}
	if err := run(*minutes, *rate, *seed, *noise, *format, *out, *startAt, *diurnal, *hotPrefix, *hotFraction, faults); err != nil {
		fmt.Fprintln(os.Stderr, "flowgen:", err)
		os.Exit(1)
	}
}

// parseFaults builds a fault spec from the router:value flag lists.
func parseFaults(seed uint64, loss, skew, silence string) (ipd.SimFaultSpec, error) {
	spec := ipd.SimFaultSpec{Seed: seed}
	each := func(list string, fn func(router ipd.RouterID, val string) error) error {
		if list == "" {
			return nil
		}
		for _, item := range strings.Split(list, ",") {
			r, val, ok := strings.Cut(strings.TrimSpace(item), ":")
			if !ok {
				return fmt.Errorf("fault %q: want router:value", item)
			}
			id, err := strconv.ParseUint(r, 10, 32)
			if err != nil {
				return fmt.Errorf("fault %q: bad router: %v", item, err)
			}
			if err := fn(ipd.RouterID(id), val); err != nil {
				return fmt.Errorf("fault %q: %v", item, err)
			}
		}
		return nil
	}
	if err := each(loss, func(r ipd.RouterID, v string) error {
		p, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return err
		}
		if spec.Loss == nil {
			spec.Loss = map[ipd.RouterID]float64{}
		}
		spec.Loss[r] = p
		return nil
	}); err != nil {
		return spec, err
	}
	if err := each(skew, func(r ipd.RouterID, v string) error {
		d, err := time.ParseDuration(v)
		if err != nil {
			return err
		}
		if spec.Skew == nil {
			spec.Skew = map[ipd.RouterID]time.Duration{}
		}
		spec.Skew[r] = d
		return nil
	}); err != nil {
		return spec, err
	}
	if err := each(silence, func(r ipd.RouterID, v string) error {
		from, to, ok := strings.Cut(v, "-")
		if !ok {
			return fmt.Errorf("want from-to window, got %q", v)
		}
		df, err := time.ParseDuration(from)
		if err != nil {
			return err
		}
		dt, err := time.ParseDuration(to)
		if err != nil {
			return err
		}
		if spec.Silence == nil {
			spec.Silence = map[ipd.RouterID]ipd.SimFaultWindow{}
		}
		spec.Silence[r] = ipd.SimFaultWindow{From: df, To: dt}
		return nil
	}); err != nil {
		return spec, err
	}
	return spec, nil
}

func run(minutes, rate int, seed int64, noise float64, format, out string, offset time.Duration, diurnal bool, hotPrefix string, hotFraction float64, faults ipd.SimFaultSpec) error {
	spec := ipd.DefaultSimSpec()
	spec.Seed = seed
	scn, err := ipd.NewSimScenario(spec)
	if err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	cfg := ipd.SimGenConfig{
		FlowsPerMinute: rate,
		NoiseFraction:  noise,
		Seed:           seed,
		Diurnal:        diurnal,
		HotFraction:    hotFraction,
	}
	if hotPrefix != "" {
		p, err := netip.ParsePrefix(hotPrefix)
		if err != nil {
			return fmt.Errorf("bad -hot-prefix: %w", err)
		}
		cfg.HotPrefix = p
	}
	start := scn.Start.Add(offset)
	end := start.Add(time.Duration(minutes) * time.Minute)

	// The fault filter sits between the generator and the writer so that
	// degraded feeds (lost records, skewed stamps, silent routers) land in
	// the trace exactly as a broken export path would deliver them.
	filter, err := ipd.NewSimRecordFaults(faults, start)
	if err != nil {
		return err
	}
	count, faulted := 0, 0
	switch format {
	case "binary":
		tw := ipd.NewTraceWriter(w)
		err = scn.Stream(start, end, cfg, func(rec ipd.Record) bool {
			var ok bool
			if rec, ok = filter(rec); !ok {
				faulted++
				return true
			}
			if werr := tw.Write(rec); werr != nil {
				err = werr
				return false
			}
			count++
			return true
		})
		if err != nil {
			return err
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	case "csv":
		bw := bufio.NewWriter(w)
		fmt.Fprintln(bw, "# ts_unix_nanos,src,dst,router,iface,bytes,packets")
		var buf []byte
		err = scn.Stream(start, end, cfg, func(rec ipd.Record) bool {
			var ok bool
			if rec, ok = filter(rec); !ok {
				faulted++
				return true
			}
			buf = flow.AppendCSV(buf[:0], rec)
			if _, werr := bw.Write(buf); werr != nil {
				err = werr
				return false
			}
			count++
			return true
		})
		if err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown format %q (want binary or csv)", format)
	}
	fmt.Fprintf(os.Stderr, "flowgen: wrote %d records covering %s - %s\n",
		count, start.Format(time.RFC3339), end.Format(time.RFC3339))
	if !faults.Empty() {
		fmt.Fprintf(os.Stderr, "flowgen: faults suppressed %d records\n", faulted)
	}
	return nil
}
