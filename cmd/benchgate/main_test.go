package main

import (
	"os"
	"path/filepath"
	"testing"
)

const benchOut = `goos: linux
goarch: amd64
pkg: ipd
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkObserve-8          6644589	       420.0 ns/op	        96.00 ranges
BenchmarkObserve-8          6712001	       362.4 ns/op	        96.00 ranges
BenchmarkObserveTraced-8    6500000	       371.9 ns/op	        96.00 ranges
BenchmarkUnrelated-8        1000000	      1000.0 ns/op
PASS
`

const refJSON = `{
  "pr": 3,
  "results": {
    "BenchmarkObserve_ns_per_op": 360.8,
    "BenchmarkObserveTraced_ns_per_op": 366.0,
    "BenchmarkMissing_ns_per_op": 100.0
  }
}`

func writeFixtures(t *testing.T, bench, ref string) (string, string) {
	t.Helper()
	dir := t.TempDir()
	bp := filepath.Join(dir, "bench.txt")
	rp := filepath.Join(dir, "ref.json")
	if err := os.WriteFile(bp, []byte(bench), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(rp, []byte(ref), 0o644); err != nil {
		t.Fatal(err)
	}
	return bp, rp
}

func TestParseBenchTakesMin(t *testing.T) {
	bp, _ := writeFixtures(t, benchOut, refJSON)
	mins, err := parseBench(bp)
	if err != nil {
		t.Fatal(err)
	}
	// Two BenchmarkObserve rows: the min (362.4) wins over 420.0.
	if got := mins["BenchmarkObserve"]; got != 362.4 {
		t.Errorf("BenchmarkObserve min = %v, want 362.4", got)
	}
	if got := mins["BenchmarkObserveTraced"]; got != 371.9 {
		t.Errorf("BenchmarkObserveTraced = %v, want 371.9", got)
	}
	if _, ok := mins["PASS"]; ok {
		t.Error("non-benchmark lines must not parse")
	}
}

func TestGatePassesWithinThreshold(t *testing.T) {
	bp, rp := writeFixtures(t, benchOut, refJSON)
	// 362.4 vs 360.8 is +0.4%, 371.9 vs 366.0 is +1.6%: both inside 10%.
	if err := gate(bp, rp, 10); err != nil {
		t.Fatalf("gate failed: %v", err)
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	bp, rp := writeFixtures(t, benchOut, refJSON)
	// At a 1% ceiling the +1.6% traced result must fail.
	if err := gate(bp, rp, 1); err == nil {
		t.Fatal("gate passed despite regression over threshold")
	}
}

func TestGateSkipsUnknownNames(t *testing.T) {
	// A bench file with only un-referenced names is an error (no overlap),
	// not a silent pass.
	bp, rp := writeFixtures(t, "BenchmarkNovel-8  1  10.0 ns/op\n", refJSON)
	if err := gate(bp, rp, 10); err == nil {
		t.Fatal("gate passed with zero overlapping benchmarks")
	}
}
