// Command benchgate compares `go test -bench` output against a checked-in
// BENCH_*.json reference and fails on performance regressions.
//
//	go test -run '^$' -bench 'BenchmarkObserve' -count 3 . | tee bench.txt
//	benchgate -bench bench.txt -ref BENCH_3.json -max-regression 10
//
// For every benchmark name appearing in both the bench output and the
// reference's "results" object (keys "<Name>_ns_per_op"), the gate takes
// the minimum ns/op across the output's repeated runs (the floor damps
// scheduler noise; a single fast run proves the code can go that fast) and
// fails if it exceeds the reference by more than -max-regression percent.
// Names present in only one side are reported and skipped — the gate only
// checks what both sides know.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// benchLine matches one `go test -bench` result row, e.g.
//
//	BenchmarkObserve-8   6644589   362.4 ns/op   24 B/op ...
//
// The -8 GOMAXPROCS suffix is optional; metrics after ns/op are ignored.
var benchLine = regexp.MustCompile(`^(Benchmark\w+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// reference is the subset of the BENCH_*.json shape the gate consumes.
type reference struct {
	Results map[string]float64 `json:"results"`
}

// parseBench reads bench output and returns min ns/op per benchmark name.
func parseBench(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	mins := make(map[string]float64)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchgate: bad ns/op %q on line %q", m[2], sc.Text())
		}
		if best, ok := mins[m[1]]; !ok || ns < best {
			mins[m[1]] = ns
		}
	}
	return mins, sc.Err()
}

// loadRef reads a BENCH_*.json file and returns reference ns/op per
// benchmark name (strips the "_ns_per_op" key suffix).
func loadRef(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ref reference
	if err := json.Unmarshal(data, &ref); err != nil {
		return nil, fmt.Errorf("benchgate: %s: %v", path, err)
	}
	out := make(map[string]float64)
	for k, v := range ref.Results {
		const suffix = "_ns_per_op"
		if len(k) > len(suffix) && k[len(k)-len(suffix):] == suffix {
			out[k[:len(k)-len(suffix)]] = v
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchgate: %s: no *_ns_per_op entries under \"results\"", path)
	}
	return out, nil
}

func main() {
	var (
		benchPath = flag.String("bench", "", "go test -bench output file (required)")
		refPath   = flag.String("ref", "", "BENCH_*.json reference file (required)")
		maxPct    = flag.Float64("max-regression", 10, "fail when min ns/op exceeds the reference by more than this percent")
	)
	flag.Parse()
	if *benchPath == "" || *refPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := gate(*benchPath, *refPath, *maxPct); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func gate(benchPath, refPath string, maxPct float64) error {
	measured, err := parseBench(benchPath)
	if err != nil {
		return err
	}
	if len(measured) == 0 {
		return fmt.Errorf("benchgate: no benchmark results in %s", benchPath)
	}
	refs, err := loadRef(refPath)
	if err != nil {
		return err
	}

	names := make([]string, 0, len(measured))
	for n := range measured {
		names = append(names, n)
	}
	sort.Strings(names)

	failed := 0
	checked := 0
	for _, n := range names {
		ref, ok := refs[n]
		if !ok {
			fmt.Printf("benchgate: %-32s %8.1f ns/op  (no reference, skipped)\n", n, measured[n])
			continue
		}
		checked++
		delta := (measured[n]/ref - 1) * 100
		status := "ok"
		if delta > maxPct {
			status = "FAIL"
			failed++
		}
		fmt.Printf("benchgate: %-32s %8.1f ns/op  ref %8.1f  %+6.1f%%  %s\n",
			n, measured[n], ref, delta, status)
	}
	for n := range refs {
		if _, ok := measured[n]; !ok {
			fmt.Printf("benchgate: %-32s (in reference, not measured)\n", n)
		}
	}
	if checked == 0 {
		return fmt.Errorf("benchgate: no benchmark overlaps between %s and %s", benchPath, refPath)
	}
	if failed > 0 {
		return fmt.Errorf("benchgate: %d of %d benchmarks regressed more than %.0f%% vs %s", failed, checked, maxPct, refPath)
	}
	fmt.Printf("benchgate: %d benchmarks within %.0f%% of %s\n", checked, maxPct, refPath)
	return nil
}
