// Command ipd runs the Ingress Point Detection engine on a flow trace
// (binary trace format from flowgen, or CSV) and emits the raw IPD output
// rows (Appendix B format) every output bin.
//
// Usage:
//
//	flowgen -minutes 30 -o trace.ipd
//	ipd -in trace.ipd -factor4 0.01 -bin 5m
//	ipd -in trace.csv -format csv -summary
//	ipd -in trace.ipd -log-level info -debug-http :8080
//
// -log-level info emits one structured log line per stage-2 cycle;
// -debug-http serves /metrics (Prometheus), /debug/vars (JSON dump), and
// /debug/pprof while the trace is processed.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"time"

	"ipd"
	"ipd/internal/flow"
)

func main() {
	var (
		in        = flag.String("in", "-", "input trace file ('-' = stdin)")
		format    = flag.String("format", "binary", "input format: binary or csv")
		factor4   = flag.Float64("factor4", 0.01, "IPv4 n_cidr factor (64 at deployment traffic rates)")
		factor6   = flag.Float64("factor6", 1e-8, "IPv6 n_cidr factor")
		floor     = flag.Float64("floor", 4, "n_cidr floor (min samples to classify any range)")
		q         = flag.Float64("q", 0.95, "quality threshold")
		cidrMax4  = flag.Int("cidrmax4", 28, "IPv4 cidr_max")
		cidrMax6  = flag.Int("cidrmax6", 48, "IPv6 cidr_max")
		tBucket   = flag.Duration("t", time.Minute, "cycle length")
		expiry    = flag.Duration("e", 2*time.Minute, "per-IP state expiration")
		bin       = flag.Duration("bin", 5*time.Minute, "output bin length")
		bytesCnt  = flag.Bool("bytes", false, "count bytes instead of flows")
		summary   = flag.Bool("summary", false, "print only the final summary")
		logLevel  = flag.String("log-level", "warn", "structured log level: debug, info, warn, error (info and below log one line per stage-2 cycle)")
		debugHTTP = flag.String("debug-http", "", "serve /metrics, /debug/vars, and /debug/pprof on this address while processing ('' disables)")
	)
	flag.Parse()

	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "ipd: bad -log-level %q (want debug, info, warn, or error)\n", *logLevel)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))

	cfg := config(*factor4, *factor6, *floor, *q, *cidrMax4, *cidrMax6, *tBucket, *expiry, *bytesCnt)
	cfg.Logger = logger
	if err := run(*in, *format, cfg, *bin, *summary, *debugHTTP); err != nil {
		fmt.Fprintln(os.Stderr, "ipd:", err)
		os.Exit(1)
	}
}

func config(f4, f6, floor, q float64, cm4, cm6 int, t, e time.Duration, bytesCnt bool) ipd.Config {
	cfg := ipd.DefaultConfig()
	cfg.NCidrFactor4 = f4
	cfg.NCidrFactor6 = f6
	cfg.NCidrFloor = floor
	cfg.Q = q
	cfg.CIDRMax4 = cm4
	cfg.CIDRMax6 = cm6
	cfg.T = t
	cfg.E = e
	cfg.CountBytes = bytesCnt
	return cfg
}

// serveDebug mounts the telemetry and profiling surface while a trace run
// is in flight (best-effort: the process exits with the run).
func serveDebug(addr string, reg *ipd.TelemetryRegistry) {
	ipd.RegisterProcessMetrics(reg)
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/vars", reg.JSONHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "ipd: debug http:", err)
		}
	}()
	fmt.Fprintf(os.Stderr, "ipd: debug endpoints on http://%s\n", addr)
}

func run(in, format string, cfg ipd.Config, bin time.Duration, summary bool, debugHTTP string) error {
	var r io.Reader = os.Stdin
	if in != "-" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}

	eng, err := ipd.NewEngine(cfg)
	if err != nil {
		return err
	}
	flowMetrics := ipd.NewFlowMetrics(eng.Telemetry())
	if debugHTTP != "" {
		serveDebug(debugHTTP, eng.Telemetry())
	}
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	var nextBin time.Time
	emit := func(at time.Time) error {
		if summary {
			return nil
		}
		return ipd.WriteOutputSnapshot(out, at, eng.Mapped(), nil)
	}
	handle := func(rec ipd.Record) error {
		if nextBin.IsZero() {
			nextBin = rec.Ts.Truncate(bin).Add(bin)
		}
		for !rec.Ts.Before(nextBin) {
			eng.AdvanceTo(nextBin)
			if err := emit(nextBin); err != nil {
				return err
			}
			nextBin = nextBin.Add(bin)
		}
		eng.Feed(rec)
		return nil
	}

	var count int
	switch format {
	case "binary":
		tr := ipd.NewTraceReader(r)
		tr.SetMetrics(flowMetrics)
		for {
			rec, err := tr.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			if err := handle(rec); err != nil {
				return err
			}
			count++
		}
	case "csv":
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			rec, err := flow.ParseCSV(line)
			if err != nil {
				return err
			}
			if err := handle(rec); err != nil {
				return err
			}
			count++
		}
		if err := sc.Err(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown format %q (want binary or csv)", format)
	}

	eng.ForceCycle()
	if err := emit(eng.Now()); err != nil {
		return err
	}
	st := eng.Stats()
	fmt.Fprintf(os.Stderr,
		"ipd: %d records, %d cycles, %d classifications (%d invalidated, %d expired), %d splits, %d joins, %d active ranges, %d mapped\n",
		count, st.Cycles, st.Classifications, st.Invalidations, st.Expirations,
		st.Splits, st.Joins, eng.RangeCount(), len(eng.Mapped()))
	return nil
}
