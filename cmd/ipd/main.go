// Command ipd runs the Ingress Point Detection engine on a flow trace
// (binary trace format from flowgen, or CSV) and emits the raw IPD output
// rows (Appendix B format) every output bin.
//
// Usage:
//
//	flowgen -minutes 30 -o trace.ipd
//	ipd -in trace.ipd -factor4 0.01 -bin 5m
//	ipd -in trace.csv -format csv -summary
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"ipd"
	"ipd/internal/flow"
)

func main() {
	var (
		in       = flag.String("in", "-", "input trace file ('-' = stdin)")
		format   = flag.String("format", "binary", "input format: binary or csv")
		factor4  = flag.Float64("factor4", 0.01, "IPv4 n_cidr factor (64 at deployment traffic rates)")
		factor6  = flag.Float64("factor6", 1e-8, "IPv6 n_cidr factor")
		floor    = flag.Float64("floor", 4, "n_cidr floor (min samples to classify any range)")
		q        = flag.Float64("q", 0.95, "quality threshold")
		cidrMax4 = flag.Int("cidrmax4", 28, "IPv4 cidr_max")
		cidrMax6 = flag.Int("cidrmax6", 48, "IPv6 cidr_max")
		tBucket  = flag.Duration("t", time.Minute, "cycle length")
		expiry   = flag.Duration("e", 2*time.Minute, "per-IP state expiration")
		bin      = flag.Duration("bin", 5*time.Minute, "output bin length")
		bytesCnt = flag.Bool("bytes", false, "count bytes instead of flows")
		summary  = flag.Bool("summary", false, "print only the final summary")
	)
	flag.Parse()

	if err := run(*in, *format, config(*factor4, *factor6, *floor, *q, *cidrMax4, *cidrMax6, *tBucket, *expiry, *bytesCnt), *bin, *summary); err != nil {
		fmt.Fprintln(os.Stderr, "ipd:", err)
		os.Exit(1)
	}
}

func config(f4, f6, floor, q float64, cm4, cm6 int, t, e time.Duration, bytesCnt bool) ipd.Config {
	cfg := ipd.DefaultConfig()
	cfg.NCidrFactor4 = f4
	cfg.NCidrFactor6 = f6
	cfg.NCidrFloor = floor
	cfg.Q = q
	cfg.CIDRMax4 = cm4
	cfg.CIDRMax6 = cm6
	cfg.T = t
	cfg.E = e
	cfg.CountBytes = bytesCnt
	return cfg
}

func run(in, format string, cfg ipd.Config, bin time.Duration, summary bool) error {
	var r io.Reader = os.Stdin
	if in != "-" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}

	eng, err := ipd.NewEngine(cfg)
	if err != nil {
		return err
	}
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	var nextBin time.Time
	emit := func(at time.Time) error {
		if summary {
			return nil
		}
		return ipd.WriteOutputSnapshot(out, at, eng.Mapped(), nil)
	}
	handle := func(rec ipd.Record) error {
		if nextBin.IsZero() {
			nextBin = rec.Ts.Truncate(bin).Add(bin)
		}
		for !rec.Ts.Before(nextBin) {
			eng.AdvanceTo(nextBin)
			if err := emit(nextBin); err != nil {
				return err
			}
			nextBin = nextBin.Add(bin)
		}
		eng.Feed(rec)
		return nil
	}

	var count int
	switch format {
	case "binary":
		tr := ipd.NewTraceReader(r)
		for {
			rec, err := tr.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			if err := handle(rec); err != nil {
				return err
			}
			count++
		}
	case "csv":
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			rec, err := flow.ParseCSV(line)
			if err != nil {
				return err
			}
			if err := handle(rec); err != nil {
				return err
			}
			count++
		}
		if err := sc.Err(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown format %q (want binary or csv)", format)
	}

	eng.ForceCycle()
	if err := emit(eng.Now()); err != nil {
		return err
	}
	st := eng.Stats()
	fmt.Fprintf(os.Stderr,
		"ipd: %d records, %d cycles, %d classifications (%d invalidated, %d expired), %d splits, %d joins, %d active ranges, %d mapped\n",
		count, st.Cycles, st.Classifications, st.Invalidations, st.Expirations,
		st.Splits, st.Joins, eng.RangeCount(), len(eng.Mapped()))
	return nil
}
