// Command ipd runs the Ingress Point Detection engine on a flow trace
// (binary trace format from flowgen, or CSV) and emits the raw IPD output
// rows (Appendix B format) every output bin.
//
// Usage:
//
//	flowgen -minutes 30 -o trace.ipd
//	ipd -in trace.ipd -factor4 0.01 -bin 5m
//	ipd -in trace.csv -format csv -summary
//	ipd -in trace.ipd -log-level info -debug-http :8080
//	ipd -in trace.ipd -journal decisions.jsonl -explain 10.1.2.3
//	ipd -in trace.ipd -trace-out trace.json
//	ipd -replay decisions.jsonl
//
// -log-level info emits one structured log line per stage-2 cycle;
// -debug-http serves /metrics (Prometheus), /debug/vars (JSON dump),
// /debug/pprof, the /ipd/* introspection API (ranges, range history,
// explain, event tail, trace-span tail), and the watchdog's /healthz and
// /readyz probes while the trace is processed. -journal mirrors every
// range-lifecycle decision to an append-only JSONL file; -replay
// reconstructs the final partition from such a file without rerunning the
// trace. -explain prints the decision provenance for one or more IPs after
// the run. -trace-out writes the span flight recorder as a Chrome
// trace-event JSON file (Perfetto / chrome://tracing) after the run;
// -trace-cap and -trace-sample size the recorder and the 1-in-N per-record
// span sampling.
//
// Crash safety: -checkpoint-dir makes the run periodically write the full
// engine state as a CRC-guarded checkpoint file (every -checkpoint-every
// stage-2 cycles, plus a final one), and on startup restore the newest valid
// checkpoint from that directory; when -journal points at the journal of the
// interrupted run, the events recorded after the restored checkpoint are
// replayed on top, so the partition resumes exactly where the previous
// process died (the journal file is then appended to, not truncated).
// -resync switches the binary trace reader into degraded-mode ingest:
// corrupt byte stretches are scanned past (counted in
// ipd_records_resync_total) instead of aborting the run.
//
// Resource governance: -max-ranges and -mem-budget bound the partition size
// and live heap; either implies -governor, which evaluates the budgets every
// stage-2 cycle and degrades gracefully (defer splits while degraded,
// force-compact low-traffic subtrees in emergency) instead of growing
// without bound under adversarial traffic. Governor state is served at
// /ipd/governor on the debug server, drives /readyz (503 in emergency), and
// lands in the journal as governor events.
//
// Longitudinal observability: a bounded in-process timeline samples the
// engine at the end of every stage-2 cycle (-timeline-every thins the
// cadence, -timeline-window sizes the per-series ring, 0 disables) and runs
// flap/drift/convergence analytics on top; alerts land in the journal as
// alert events and the series are served at /ipd/timeline (JSON or
// format=csv) next to /ipd/alerts on the debug server. -mutexprofile
// enables runtime mutex/block profiling for /debug/pprof/{mutex,block}.
//
// Input data quality: an exporter-health tracker accounts the records each
// router contributes and folds them into a per-router coverage score every
// cycle; classifications made while a router's feed is stale carry a
// degraded-coverage annotation in the journal, -explain, and /ipd/explain.
// -exporter-stale-after sets the silence threshold; -skew-max bounds
// export-clock skew (it only matters for the UDP collectors — trace files
// carry no export clock). The per-feed state is served at /ipd/exporters.
//
// Cluster core: -listen-delta turns this binary into the central node of an
// edge→core deployment. Instead of reading a trace it accepts delta
// sessions from `ipd-collector -ship-to` edges, dedupes on per-edge record
// offsets, merges the streams in deterministic statistical-time order
// (-edges lists the edge IDs the merge gate waits for; -merge-stall trades
// that determinism for liveness when an edge dies), and feeds the merged
// stream through the same engine, binning, and observability pipeline —
// the resulting partition is byte-identical to a single node ingesting the
// concatenated edge traffic. With -checkpoint-dir the core checkpoints the
// engine state together with the per-edge applied offsets and acks edges
// only up to what is durably on disk, so a kill -9 restart loses nothing:
// everything past the restored offsets is still spooled on some edge and
// is redelivered on reconnect. Transport state is served at /ipd/cluster.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"net/netip"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"ipd"
	"ipd/internal/cliflags"
	"ipd/internal/flow"
)

func main() {
	var (
		in         = flag.String("in", "-", "input trace file ('-' = stdin)")
		format     = flag.String("format", "binary", "input format: binary or csv")
		factor4    = flag.Float64("factor4", 0.01, "IPv4 n_cidr factor (64 at deployment traffic rates)")
		factor6    = flag.Float64("factor6", 1e-8, "IPv6 n_cidr factor")
		floor      = flag.Float64("floor", 4, "n_cidr floor (min samples to classify any range)")
		q          = flag.Float64("q", 0.95, "quality threshold")
		cidrMax4   = flag.Int("cidrmax4", 28, "IPv4 cidr_max")
		cidrMax6   = flag.Int("cidrmax6", 48, "IPv6 cidr_max")
		tBucket    = flag.Duration("t", time.Minute, "cycle length")
		expiry     = flag.Duration("e", 2*time.Minute, "per-IP state expiration")
		bin        = flag.Duration("bin", 5*time.Minute, "output bin length")
		bytesCnt   = flag.Bool("bytes", false, "count bytes instead of flows")
		summary    = flag.Bool("summary", false, "print only the final summary")
		logLevel   = flag.String("log-level", "warn", "structured log level: debug, info, warn, error (info and below log one line per stage-2 cycle)")
		debugHTTP  = flag.String("debug-http", "", "serve /metrics, /debug/vars, /debug/pprof, and /ipd/* introspection on this address while processing ('' disables)")
		journalOut = flag.String("journal", "", "append every lifecycle decision as JSON lines to this file ('' disables the sink; the in-memory journal always runs)")
		journalCap = flag.Int("journal-cap", 4096, "in-memory decision journal ring capacity")
		explainIPs = flag.String("explain", "", "comma-separated IPs: print decision provenance for each after the run")
		replayIn   = flag.String("replay", "", "replay a JSONL decision journal and print the reconstructed partition (no trace is read)")
		traceCap   = flag.Int("trace-cap", 8192, "flight-recorder ring capacity in spans (tracing runs when -trace-out or -debug-http is set)")
		traceSmpl  = flag.Int("trace-sample", 1024, "sample 1-in-N per-record spans (read, observe); stage-2 cycle phases are always traced")
		traceOut   = flag.String("trace-out", "", "write the flight recorder as Chrome trace-event JSON (load in Perfetto / chrome://tracing) after the run ('' disables)")
		ckptDir    = flag.String("checkpoint-dir", "", "write periodic CRC-guarded state checkpoints to this directory and restore the newest valid one on startup ('' disables)")
		ckptEvery  = flag.Uint64("checkpoint-every", 10, "checkpoint every N stage-2 cycles (with -checkpoint-dir)")
		resync     = flag.Bool("resync", false, "degraded-mode ingest: scan past corrupt bytes in the binary trace instead of aborting (counted in ipd_records_resync_total)")
		govern     = flag.Bool("governor", false, "enable the resource governor (normal/degraded/emergency degradation; implied by -max-ranges or -mem-budget)")
		maxRanges  = flag.Int("max-ranges", 0, "hard cap on active ranges; splits beyond it are deferred (0 = unlimited, implies -governor)")
		memBudget  = flag.Int64("mem-budget", 0, "live-heap budget in bytes for the governor (0 = unlimited, implies -governor)")
		tlWindow   = flag.Int("timeline-window", 512, "per-series timeline ring window in cycles; older points are downsampled into coarser tiers (0 disables the timeline)")
		tlEvery    = flag.Int("timeline-every", 1, "sample the timeline every N stage-2 cycles")
		staleAfter = flag.Duration("exporter-stale-after", 3*time.Minute, "flag a router's feed stale once it has been silent this long (statistical time)")
		skewMax    = flag.Duration("skew-max", 5*time.Minute, "export-clock skew limit for the exporter-health coverage score")
		mutexProf  = flag.Int("mutexprofile", 0, "runtime mutex/block profiling fraction for /debug/pprof/{mutex,block} (0 disables)")
		wlTopK     = flag.Int("workload-topk", 32, "workload profiler heavy-hitter capacity (top-K /24 or /48 aggregates)")
		wlDepth    = flag.Int("workload-maxdepth", 10, "deepest candidate shard depth simulated by the workload profiler (2..10)")
		sketchOn   = flag.Bool("sketch", false, "enable the fixed-memory sketch tier: under governor pressure, unclassified ranges far from the classification threshold degrade per-IP state to a count-min sketch and hydrate back when calm")
		sketchW    = flag.Int("sketch-width", 1024, "count-min sketch width in counters per row (16..1048576; error bound ε = e/width of window mass)")
		sketchD    = flag.Int("sketch-depth", 4, "count-min sketch depth in rows (1..16; bound failure probability δ = e^-depth)")
		sketchM    = flag.Float64("sketch-exact-margin", 0.05, "keep exact per-IP state while a range's top share is within this margin below q (0 uses the engine default)")
		listenDlt  = flag.String("listen-delta", "", "run as the cluster core: accept edge delta sessions on this TCP address instead of reading a trace ('' disables)")
		edgesList  = flag.String("edges", "", "comma-separated edge IDs the deterministic merge waits for (with -listen-delta; '' merges edges as they appear, order then depends on join timing)")
		mergeStall = flag.Duration("merge-stall", 0, "exclude a silent edge from the merge gate after this long (0 = never: the merge stays deterministic but stalls while an edge is down)")
		heartbeat  = flag.Duration("heartbeat", 2*time.Second, "delta transport keepalive interval; peers declare a connection dead after 4x this")
	)
	flag.Parse()
	if err := validateFlags(*ckptEvery, *traceSmpl, *maxRanges, *memBudget, *tlWindow, *tlEvery, *mutexProf, *staleAfter, *skewMax, *wlTopK, *wlDepth); err != nil {
		fmt.Fprintln(os.Stderr, "ipd:", err)
		os.Exit(2)
	}
	if err := cliflags.DeltaListen(*listenDlt, *mergeStall, *heartbeat); err != nil {
		fmt.Fprintln(os.Stderr, "ipd:", err)
		os.Exit(2)
	}
	if err := cliflags.Sketch(*sketchOn, *sketchW, *sketchD, *sketchM); err != nil {
		fmt.Fprintln(os.Stderr, "ipd:", err)
		os.Exit(2)
	}
	if *mutexProf > 0 {
		runtime.SetMutexProfileFraction(*mutexProf)
		runtime.SetBlockProfileRate(*mutexProf)
	}

	if *replayIn != "" {
		if err := replay(*replayIn); err != nil {
			fmt.Fprintln(os.Stderr, "ipd:", err)
			os.Exit(1)
		}
		return
	}

	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "ipd: bad -log-level %q (want debug, info, warn, or error)\n", *logLevel)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))

	cfg := config(*factor4, *factor6, *floor, *q, *cidrMax4, *cidrMax6, *tBucket, *expiry, *bytesCnt)
	cfg.Logger = logger
	if *sketchOn {
		cfg.Sketch = true
		cfg.SketchWidth = *sketchW
		cfg.SketchDepth = *sketchD
		cfg.SketchExactMargin = *sketchM
	}
	tf := traceFlags{capacity: *traceCap, sampleN: *traceSmpl, out: *traceOut}
	cf := ckptFlags{dir: *ckptDir, every: *ckptEvery, resync: *resync}
	gf := govFlags{enabled: *govern, maxRanges: *maxRanges, memBudget: *memBudget}
	tl := timelineFlags{window: *tlWindow, every: *tlEvery}
	ef := exporterFlags{staleAfter: *staleAfter, skewMax: *skewMax}
	wf := workloadFlags{topK: *wlTopK, maxDepth: *wlDepth}
	df := deltaFlags{listen: *listenDlt, edges: splitEdges(*edgesList), mergeStall: *mergeStall, heartbeat: *heartbeat}
	if err := run(*in, *format, cfg, *bin, *summary, *debugHTTP, *journalOut, *journalCap, *explainIPs, tf, cf, gf, tl, ef, wf, df); err != nil {
		fmt.Fprintln(os.Stderr, "ipd:", err)
		os.Exit(1)
	}
}

// validateFlags chains the shared rule sets from internal/cliflags; the
// first violated rule wins.
func validateFlags(ckptEvery uint64, traceSample, maxRanges int, memBudget int64, tlWindow, tlEvery, mutexProf int, staleAfter, skewMax time.Duration, wlTopK, wlMaxDepth int) error {
	if err := cliflags.Engine(ckptEvery, traceSample, maxRanges, memBudget, tlWindow, tlEvery, mutexProf); err != nil {
		return err
	}
	if err := cliflags.ExporterHealth(staleAfter, skewMax); err != nil {
		return err
	}
	return cliflags.Workload(wlTopK, wlMaxDepth)
}

// workloadFlags carries the workload-profiler flag values into run.
type workloadFlags struct {
	topK     int // heavy-hitter table capacity
	maxDepth int // deepest candidate shard depth simulated
}

// deltaFlags carries the cluster-core flag values into run.
type deltaFlags struct {
	listen     string   // TCP listen address; "" = normal trace mode
	edges      []string // expected edge IDs for the deterministic merge
	mergeStall time.Duration
	heartbeat  time.Duration
}

// splitEdges parses the comma-separated -edges list, dropping empty items.
func splitEdges(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func config(f4, f6, floor, q float64, cm4, cm6 int, t, e time.Duration, bytesCnt bool) ipd.Config {
	cfg := ipd.DefaultConfig()
	cfg.NCidrFactor4 = f4
	cfg.NCidrFactor6 = f6
	cfg.NCidrFloor = floor
	cfg.Q = q
	cfg.CIDRMax4 = cm4
	cfg.CIDRMax6 = cm6
	cfg.T = t
	cfg.E = e
	cfg.CountBytes = bytesCnt
	return cfg
}

// replay implements -replay: rebuild the partition from a decision log.
func replay(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rp, err := ipd.ReplayJournal(bufio.NewReader(f))
	if err != nil {
		return err
	}
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	views := rp.Snapshot()
	for _, v := range views {
		if v.Classified {
			fmt.Fprintf(out, "%s\t%s\n", v.Prefix, v.Ingress)
		} else {
			fmt.Fprintf(out, "%s\tunclassified\n", v.Prefix)
		}
	}
	fmt.Fprintf(os.Stderr, "ipd: replayed %d events into %d active ranges\n", rp.Seq(), len(views))
	return nil
}

// lockedEngine adapts the single-threaded Engine to the concurrent
// introspect.Source contract: the run loop and the HTTP handlers both go
// through mu. The trace loop holds mu per record batch boundary (feed/
// advance), which is uncontended unless a debug request is in flight.
type lockedEngine struct {
	mu  sync.Mutex
	eng *ipd.Engine
}

func (l *lockedEngine) Snapshot() []ipd.RangeInfo {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.eng.Snapshot()
}

func (l *lockedEngine) Range(addr netip.Addr) (ipd.RangeInfo, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.eng.Range(addr)
}

func (l *lockedEngine) Explain(addr netip.Addr) (ipd.Explanation, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.eng.Explain(addr)
}

// traceFlags carries the -trace-* flag values into run.
type traceFlags struct {
	capacity int
	sampleN  int
	out      string
}

// ckptFlags carries the crash-safety flag values into run.
type ckptFlags struct {
	dir    string
	every  uint64
	resync bool
}

// govFlags carries the resource-governor flag values into run.
type govFlags struct {
	enabled   bool
	maxRanges int
	memBudget int64
}

// active reports whether a governor should be built (explicitly enabled or
// implied by a budget flag).
func (g govFlags) active() bool { return g.enabled || g.maxRanges > 0 || g.memBudget > 0 }

// timelineFlags carries the longitudinal-observability flag values into run.
type timelineFlags struct {
	window int // per-series ring window in cycles; 0 disables the timeline
	every  int // sample every N stage-2 cycles
}

// exporterFlags carries the exporter-health flag values into run.
type exporterFlags struct {
	staleAfter time.Duration
	skewMax    time.Duration
}

// restoreState implements the startup half of crash recovery: load the
// newest valid checkpoint from mgr into eng, then replay the tail of the
// previous run's journal (events newer than the checkpoint) on top. A cold
// start (no checkpoint) or a missing journal file is not an error.
func restoreState(eng *ipd.Engine, mgr *ipd.CheckpointManager, journalPath string) error {
	path, err := mgr.Load(eng.UnmarshalState)
	if err != nil {
		if errors.Is(err, ipd.ErrNoCheckpoint) {
			return nil // cold start
		}
		return fmt.Errorf("checkpoint restore: %v", err)
	}
	fmt.Fprintf(os.Stderr, "ipd: restored checkpoint %s (seq %d)\n", path, eng.Seq())
	if journalPath == "" {
		return nil
	}
	f, err := os.Open(journalPath)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("journal tail: %v", err)
	}
	defer f.Close()
	n, err := ipd.ReplayJournalTail(bufio.NewReader(f), eng.Seq(), eng.ApplyEvent)
	if err != nil {
		return fmt.Errorf("journal tail replay: %v", err)
	}
	mgr.NoteReplayed(n)
	if n > 0 {
		fmt.Fprintf(os.Stderr, "ipd: replayed %d journal events (now at seq %d)\n", n, eng.Seq())
	}
	return nil
}

// restoreCluster is the core-mode half of crash recovery: load the newest
// valid cluster checkpoint (engine state + per-edge applied offsets) into
// eng and return the offsets for DeltaReceiver.SetApplied. The journal tail
// is NOT replayed here — in cluster mode the transport itself replays: with
// durable acks, every record past the restored offsets is still in some
// edge's spool, and resumed sessions redeliver exactly those.
func restoreCluster(eng *ipd.Engine, mgr *ipd.CheckpointManager) (map[string]uint64, error) {
	var applied map[string]uint64
	path, err := mgr.Load(func(data []byte) error {
		state, app, err := ipd.DecodeClusterCheckpoint(data)
		if err != nil {
			return err
		}
		if err := eng.UnmarshalState(state); err != nil {
			return err
		}
		applied = app
		return nil
	})
	if err != nil {
		if errors.Is(err, ipd.ErrNoCheckpoint) {
			return nil, nil // cold start
		}
		return nil, fmt.Errorf("cluster checkpoint restore: %v", err)
	}
	fmt.Fprintf(os.Stderr, "ipd: restored cluster checkpoint %s (seq %d, %d edges)\n", path, eng.Seq(), len(applied))
	return applied, nil
}

// serveDebug mounts the telemetry, profiling, introspection, and health
// surface while a trace run is in flight (best-effort: the process exits
// with the run). wd may be nil (no watchdog → /healthz and /readyz are not
// mounted).
func serveDebug(addr string, reg *ipd.TelemetryRegistry, introspect http.Handler, wd *ipd.Watchdog) {
	ipd.RegisterProcessMetrics(reg)
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/vars", reg.JSONHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/ipd/", introspect)
	if wd != nil {
		mux.Handle("/healthz", wd.HealthzHandler())
		mux.Handle("/readyz", wd.ReadyzHandler())
	}
	srv := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "ipd: debug http:", err)
		}
	}()
	fmt.Fprintf(os.Stderr, "ipd: debug endpoints on http://%s\n", addr)
}

func run(in, format string, cfg ipd.Config, bin time.Duration, summary bool, debugHTTP, journalOut string, journalCap int, explainIPs string, tf traceFlags, cf ckptFlags, gf govFlags, tl timelineFlags, ef exporterFlags, wf workloadFlags, df deltaFlags) error {
	var r io.Reader = os.Stdin
	if in != "-" && df.listen == "" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}

	// The decision journal records every lifecycle event; -journal adds the
	// durable JSONL sink on top of the in-memory ring. With -checkpoint-dir
	// the file is opened in append mode — its existing tail is the replay
	// source for crash recovery, so truncating it would destroy exactly the
	// events a restore needs.
	jopts := ipd.JournalOptions{Capacity: journalCap}
	if journalOut != "" {
		var f *os.File
		var err error
		if cf.dir != "" {
			f, err = os.OpenFile(journalOut, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		} else {
			f, err = os.Create(journalOut)
		}
		if err != nil {
			return err
		}
		defer f.Close()
		w := bufio.NewWriter(f)
		defer w.Flush()
		jopts.Sink = w
	}

	j := ipd.NewJournal(jopts)
	cfg.OnEvent = j.Record

	// The exporter-health tracker counts the records each router contributes
	// (the trace path carries no sequence numbers or export clocks, so only
	// activity/staleness and the derived coverage apply) and the engine
	// annotates classifications made over a stale feed.
	health := ipd.NewExporterHealth(ipd.ExporterHealthOptions{
		StaleAfter: ef.staleAfter,
		SkewMax:    ef.skewMax,
	})
	cfg.Coverage = health.IngressCoverage

	// The workload profiler samples the record stream for heavy-hitter /24
	// (v6 /48) aggregates, simulated shard balance, and batch locality
	// (served at /ipd/workload with -debug-http). On an offline trace the
	// ingest-latency histogram measures file age rather than pipeline lag;
	// the aggregate and shard views are what matter here.
	wl := ipd.NewWorkloadProfiler(ipd.WorkloadOptions{
		TopK:     wf.topK,
		MaxDepth: wf.maxDepth,
		Skew:     health.RouterSkew,
	})

	// The timeline collector turns the end-of-cycle samples and the journal
	// event stream into longitudinal series plus flap/drift/convergence
	// analytics (served at /ipd/timeline and /ipd/alerts with -debug-http).
	// It also drives the exporter-health cycle ticks and exporter alerts.
	var tlColl *ipd.TimelineCollector
	if tl.window > 0 {
		tlColl = ipd.NewTimelineCollector(ipd.TimelineOptions{Window: tl.window})
		tlColl.SetExporterHealth(health)
		tlColl.SetWorkload(wl)
		cfg.OnEvent = func(ev ipd.Event) {
			j.Record(ev)
			tlColl.ObserveEvent(ev)
		}
		cfg.OnCycle = tlColl.OnCycle
		cfg.OnCycleEvery = tl.every
	} else {
		// No timeline: still tick the tracker and profiler on statistical
		// time so staleness, coverage, and the workload window stay live
		// (no alerts without the analyzer).
		cfg.OnCycle = func(s ipd.CycleSample) []ipd.Alert {
			health.Tick(s.At)
			wl.TickCycle(s.Cycle, s.At)
			return nil
		}
	}

	// The governor is built before the engine (it is part of the engine
	// config) but registers its metrics after, on the engine's registry.
	var gov *ipd.Governor
	if gf.active() {
		var err error
		gov, err = ipd.NewGovernor(ipd.GovernorConfig{
			MaxRanges:  gf.maxRanges,
			MemBudget:  uint64(gf.memBudget),
			SketchTier: cfg.Sketch,
		})
		if err != nil {
			return err
		}
		cfg.Governor = gov
		cfg.MaxRanges = gf.maxRanges
	}

	eng, err := ipd.NewEngine(cfg)
	if err != nil {
		return err
	}
	j.RegisterMetrics(eng.Telemetry())
	if gov != nil {
		gov.RegisterMetrics(eng.Telemetry())
	}
	if tlColl != nil {
		tlColl.RegisterMetrics(eng.Telemetry())
	}
	health.RegisterMetrics(eng.Telemetry())
	wl.RegisterMetrics(eng.Telemetry())
	flowMetrics := ipd.NewFlowMetrics(eng.Telemetry())
	locked := &lockedEngine{eng: eng}

	// Crash recovery: restore the newest valid checkpoint and replay the
	// journal tail, then checkpoint periodically (and finally) below. A
	// cluster core restores the envelope variant instead: engine state plus
	// the per-edge applied offsets that seed the receiver's resume handshake.
	var mgr *ipd.CheckpointManager
	var restoredApplied map[string]uint64
	if cf.dir != "" {
		mgr, err = ipd.NewCheckpointManager(ipd.CheckpointOptions{Dir: cf.dir, Registry: eng.Telemetry()})
		if err != nil {
			return err
		}
		if df.listen != "" {
			restoredApplied, err = restoreCluster(eng, mgr)
			if err != nil {
				return err
			}
		} else if err := restoreState(eng, mgr, journalOut); err != nil {
			return err
		}
	}
	lastCkpt := eng.Cycles()
	maybeCheckpoint := func(force bool) {
		if mgr == nil {
			return
		}
		// Cheap gate: an atomic cycle-counter read per record.
		cycles := eng.Cycles()
		if !force && cycles-lastCkpt < cf.every {
			return
		}
		lastCkpt = cycles
		locked.mu.Lock()
		data := eng.MarshalState()
		seq := eng.Seq()
		locked.mu.Unlock()
		// Failures are counted (ipd_checkpoint_errors_total) and logged; the
		// run continues with the previous checkpoint intact.
		if err := mgr.Save(seq, data); err != nil {
			fmt.Fprintln(os.Stderr, "ipd: checkpoint:", err)
		}
	}

	// Cluster core (-listen-delta): records arrive from edge senders over
	// the resilient delta transport instead of a trace file. The receiver is
	// built here (before the debug server mounts) so /ipd/cluster and the
	// timeline delta.* series attach race-free; its Apply callback is bound
	// below, after the record-handling closure exists — Serve starts later,
	// so the late binding is never observed.
	var recv *ipd.DeltaReceiver
	var applyBatch func([]ipd.Record, map[string]uint64) error
	if df.listen != "" {
		recv, err = ipd.NewDeltaReceiver(ipd.DeltaReceiverConfig{
			Edges:       df.edges,
			Heartbeat:   df.heartbeat,
			MergeStall:  df.mergeStall,
			DurableAcks: mgr != nil,
			Apply: func(recs []ipd.Record, app map[string]uint64) error {
				return applyBatch(recs, app)
			},
			Logf: func(format string, args ...any) {
				cfg.Logger.Info("delta: " + fmt.Sprintf(format, args...))
			},
		})
		if err != nil {
			return err
		}
		recv.SetApplied(restoredApplied)
		recv.RegisterMetrics(eng.Telemetry())
		if tlColl != nil {
			tlColl.SetCluster(func() ipd.TimelineClusterCounters {
				st := recv.Stats()
				cc := ipd.TimelineClusterCounters{
					Applied:  st.Applied,
					Sessions: st.Sessions,
				}
				for _, e := range st.Edges {
					cc.Duplicates += e.Duplicates
					cc.Gaps += e.Gaps
					cc.Pending += e.Pending
				}
				return cc
			})
		}
	}

	// Tracing runs whenever anything can consume it: a Chrome export file or
	// the debug server's /ipd/traces tail. Otherwise the tracer stays nil and
	// the hot paths pay only a nil check. The tracer is built after the
	// engine so its phase histograms land in the engine's registry.
	var tracer *ipd.Tracer
	var wd *ipd.Watchdog
	if tf.out != "" || debugHTTP != "" {
		tracer = ipd.NewTracer(ipd.TracerOptions{
			Capacity: tf.capacity,
			SampleN:  tf.sampleN,
			Registry: eng.Telemetry(),
		})
		eng.SetTracer(tracer)
		wd, err = ipd.NewWatchdog(ipd.WatchdogConfig{
			Interval: cfg.T,
			Registry: eng.Telemetry(),
		})
		if err != nil {
			return err
		}
		tracer.SetOnSpan(wd.ObserveSpan)
		if gov != nil {
			// /readyz flips to 503 while the governor is in emergency.
			wd.SetGovernor(gov)
		}
	}
	if debugHTTP != "" {
		ih := ipd.NewIntrospectHandler(locked, j)
		if tracer != nil {
			ih.SetTraces(tracer.Recorder())
		}
		if gov != nil {
			ih.SetGovernor(gov)
		}
		if tlColl != nil {
			ih.SetTimeline(tlColl)
		}
		ih.SetExporterHealth(health)
		ih.SetWorkload(wl)
		if recv != nil {
			ih.SetCluster(func() ipd.ClusterStatus {
				st := recv.Stats()
				return ipd.ClusterStatus{Role: "core", Receiver: &st}
			})
		}
		if cfg.Sketch {
			ih.SetSketch(func() ipd.SketchStatus {
				locked.mu.Lock()
				defer locked.mu.Unlock()
				return eng.SketchStatus()
			})
		}
		serveDebug(debugHTTP, eng.Telemetry(), ih, wd)
	}
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	var nextBin time.Time
	var implausible int
	emit := func(at time.Time) error {
		if summary {
			return nil
		}
		return ipd.WriteOutputSnapshot(out, at, eng.Mapped(), nil)
	}
	// maxJump bounds how far a single record may advance the clock. A corrupt
	// record that mis-decodes into a timestamp centuries ahead would otherwise
	// drive the bin-advance loop (and the engine's cycle loop) effectively
	// forever. Week-long gaps in a legitimate trace still advance cheaply.
	const maxJump = 7 * 24 * time.Hour
	handle := func(rec ipd.Record) error {
		locked.mu.Lock()
		defer locked.mu.Unlock()
		if nextBin.IsZero() {
			nextBin = rec.Ts.Truncate(bin).Add(bin)
		}
		if rec.Ts.After(nextBin.Add(maxJump)) {
			if !cf.resync {
				return fmt.Errorf("record timestamp %v jumps more than %v past the current bin %v (corrupt input? try -resync)",
					rec.Ts, maxJump, nextBin)
			}
			implausible++
			return nil
		}
		for !rec.Ts.Before(nextBin) {
			eng.AdvanceTo(nextBin)
			if err := emit(nextBin); err != nil {
				return err
			}
			nextBin = nextBin.Add(bin)
		}
		health.ObserveRecord(rec.In.Router)
		wl.ObserveRecord(rec)
		eng.Feed(rec)
		return nil
	}

	// saveCluster writes the cluster checkpoint envelope: engine state plus
	// the per-edge applied offsets of the batch just applied. MarkDurable
	// follows a successful save only — an ack licenses the senders to
	// discard, so a failed save must leave the acked boundary (and hence
	// every unpersisted record, still in some spool) where it was.
	saveCluster := func(app map[string]uint64) error {
		locked.mu.Lock()
		data := eng.MarshalState()
		seq := eng.Seq()
		locked.mu.Unlock()
		env, err := ipd.EncodeClusterCheckpoint(data, app)
		if err != nil {
			return err
		}
		return mgr.Save(seq, env)
	}

	var count int
	if df.listen != "" {
		lastClusterCkpt := eng.Cycles()
		applyBatch = func(recs []ipd.Record, app map[string]uint64) error {
			for _, rec := range recs {
				if err := handle(rec); err != nil {
					return err
				}
				count++
			}
			if mgr == nil {
				return nil
			}
			if cycles := eng.Cycles(); cycles-lastClusterCkpt >= cf.every {
				lastClusterCkpt = cycles
				if err := saveCluster(app); err != nil {
					fmt.Fprintln(os.Stderr, "ipd: cluster checkpoint:", err)
				} else {
					recv.MarkDurable(app)
				}
			}
			return nil
		}

		ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stopSig()
		ln, err := net.Listen("tcp", df.listen)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "ipd: core accepting deltas on tcp://%s (edges %v)\n", ln.Addr(), df.edges)
		serveErr := make(chan error, 1)
		go func() { serveErr <- recv.Serve(ln) }()
		var srvErr error
		select {
		case <-ctx.Done():
			_ = recv.Close()
			srvErr = <-serveErr
		case <-recv.Done():
			// Every expected edge sent Fin and its stream is fully applied.
			// Persist the final checkpoint and let the last acks flush
			// before tearing the sessions down — the edges' shutdown Drain
			// is waiting on exactly those acks to empty their spools.
			if mgr != nil {
				if err := saveCluster(recv.Applied()); err != nil {
					fmt.Fprintln(os.Stderr, "ipd: cluster checkpoint:", err)
				} else {
					recv.MarkDurable(recv.Applied())
				}
			}
			time.Sleep(df.heartbeat / 2)
			_ = recv.Close()
			srvErr = <-serveErr
		case srvErr = <-serveErr:
		}
		if srvErr != nil && recv.Err() != nil {
			return fmt.Errorf("delta receiver: %v", recv.Err())
		}
	} else {
		switch format {
		case "binary":
			tr := ipd.NewTraceReader(r)
			tr.SetMetrics(flowMetrics)
			tr.SetTracer(tracer)
			tr.SetResync(cf.resync)
			for {
				rec, err := tr.Read()
				if err == io.EOF {
					break
				}
				if err != nil {
					return err
				}
				if err := handle(rec); err != nil {
					return err
				}
				count++
				maybeCheckpoint(false)
			}
		case "csv":
			sc := bufio.NewScanner(r)
			sc.Buffer(make([]byte, 1<<20), 1<<20)
			for sc.Scan() {
				line := strings.TrimSpace(sc.Text())
				if line == "" || strings.HasPrefix(line, "#") {
					continue
				}
				rec, err := flow.ParseCSV(line)
				if err != nil {
					return err
				}
				if err := handle(rec); err != nil {
					return err
				}
				count++
				maybeCheckpoint(false)
			}
			if err := sc.Err(); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown format %q (want binary or csv)", format)
		}
	}

	locked.mu.Lock()
	eng.ForceCycle()
	err = emit(eng.Now())
	locked.mu.Unlock()
	if err != nil {
		return err
	}
	if recv != nil {
		if mgr != nil {
			if err := saveCluster(recv.Applied()); err != nil {
				fmt.Fprintln(os.Stderr, "ipd: cluster checkpoint:", err)
			}
		}
	} else {
		maybeCheckpoint(true)
	}
	if explainIPs != "" {
		if err := explain(os.Stderr, locked, j, explainIPs); err != nil {
			return err
		}
	}
	if implausible > 0 {
		fmt.Fprintf(os.Stderr, "ipd: skipped %d records with implausible timestamps (degraded input)\n", implausible)
	}
	st := eng.Stats()
	fmt.Fprintf(os.Stderr,
		"ipd: %d records, %d cycles, %d classifications (%d invalidated, %d expired), %d splits, %d joins, %d drops, %d active ranges, %d mapped, %d journal events\n",
		count, st.Cycles, st.Classifications, st.Invalidations, st.Expirations,
		st.Splits, st.Joins, st.Drops, eng.RangeCount(), len(eng.Mapped()), j.Recorded())
	if err := j.SinkErr(); err != nil {
		return fmt.Errorf("journal sink: %v", err)
	}
	if tf.out != "" && tracer != nil {
		if err := writeTrace(tf.out, tracer); err != nil {
			return fmt.Errorf("trace export: %v", err)
		}
	}
	return nil
}

// writeTrace dumps the flight recorder to path in Chrome trace-event format.
func writeTrace(path string, tracer *ipd.Tracer) error {
	spans := tracer.Recorder().Tail(0)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := ipd.WriteChromeTrace(w, spans); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ipd: wrote %d trace spans to %s\n", len(spans), path)
	return nil
}

// explain prints the decision provenance for a comma-separated IP list.
func explain(w io.Writer, src ipd.IntrospectSource, j *ipd.Journal, ips string) error {
	for _, s := range strings.Split(ips, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		addr, err := netip.ParseAddr(s)
		if err != nil {
			return fmt.Errorf("-explain: bad ip %q: %v", s, err)
		}
		ex, ok := src.Explain(addr)
		if !ok {
			fmt.Fprintf(w, "ipd: explain %s: no active range\n", addr)
			continue
		}
		fmt.Fprintf(w, "ipd: explain %s\n", addr)
		parts := make([]string, len(ex.Path))
		for i, p := range ex.Path {
			parts[i] = p.String()
		}
		fmt.Fprintf(w, "  path:    %s\n", strings.Join(parts, " > "))
		fmt.Fprintf(w, "  verdict: %s\n", ex.VerdictString())
		if ex.Coverage != nil {
			fmt.Fprintf(w, "  caveat:  %s\n", ex.Coverage)
		}
		if ex.Sketch != nil {
			fmt.Fprintf(w, "  caveat:  %s\n", ex.Sketch)
		}
		for _, sh := range ex.Shares {
			fmt.Fprintf(w, "  vote:    %s share %.3f (%.0f samples)\n", sh.Ingress, sh.Share, sh.Count)
		}
		for _, ev := range j.History(ex.Range.Prefix.String()) {
			fmt.Fprintf(w, "  event:   seq %d cycle %d %s %s (%s)\n",
				ev.Seq, ev.Cycle, ev.Kind, ev.Prefix, ev.Reason)
		}
	}
	return nil
}
