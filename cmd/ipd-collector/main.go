// Command ipd-collector is the deployment shape of §5.7 in one process:
// NetFlow v5 and IPFIX UDP collectors feeding the IPD engine
// (statistical-time cleaning included), with an HTTP status surface for
// dashboards. IPFIX is the IPv6-capable input (the deployment maps v6 at
// /48).
//
//	ipd-collector -listen :2055 -ipfix :4739 -http :8080 -exporters exporters.csv
//
// The exporters file maps export source addresses to router IDs, one
// "address,router_id" pair per line. With -trust, unknown exporters are
// auto-registered with sequential router IDs (useful for lab setups; never
// do this in production).
//
// HTTP endpoints:
//
//	/ranges       current mapped ranges (Appendix-B rows)
//	/stats        collector + engine counters (JSON)
//	/metrics      Prometheus text exposition (text/plain; version=0.0.4)
//	/debug/vars   expvar-style JSON metric dump
//	/debug/pprof  net/http/pprof profiling surface
//	/ipd/ranges   filterable range snapshot (JSON)
//	/ipd/range    one range + its decision history
//	/ipd/explain  LPM walk, vote shares, and reason chain for an IP
//	/ipd/events   tail the decision journal by sequence number
//	/ipd/traces   tail the pipeline span flight recorder (JSON)
//	/ipd/governor resource-governor state, budgets, and utilization (JSON)
//	/ipd/timeline longitudinal per-cycle series (JSON, or format=csv)
//	/ipd/alerts   active flap/drift/exporter alerts and recent alert history (JSON)
//	/ipd/exporters per-exporter feed health: loss, skew, staleness, coverage (JSON)
//	/ipd/cluster  delta-shipping transport state when -ship-to is set (JSON)
//	/ipd/sketch   fixed-memory sketch tier sizing and accuracy bound when -sketch is set (JSON)
//	/healthz      liveness (503 once no stage-2 cycle completed within the stall window)
//	/readyz       readiness (additionally 503 while the last cycle overran its budget
//	              or the resource governor is in emergency)
//
// -log-level enables structured logs (one line per stage-2 cycle at info);
// -journal mirrors every range-lifecycle decision to an append-only JSONL
// file replayable with `ipd -replay`.
//
// Crash safety: -checkpoint-dir makes the daemon write CRC-guarded state
// checkpoints every -checkpoint-every stage-2 cycles (and once more on
// graceful shutdown), and restore the newest valid one on startup; with
// -journal pointing at the previous run's journal, events recorded after the
// restored checkpoint are replayed on top (the journal is then appended to,
// not truncated). Ingest is buffered through a bounded queue that sheds the
// oldest records under overload (ipd_records_shed_total) instead of silently
// dropping the newest, and SIGTERM drains the queue, flushes open statistical
// time buckets, and writes a final checkpoint before exiting.
//
// Resource governance: -max-ranges and -mem-budget bound the partition size
// and live heap; either implies -governor, which additionally watches the
// per-IP counter population and the ingest-queue depth. While degraded the
// engine defers splits and the -sample denominator is multiplied by
// -sample-boost; in emergency low-traffic subtrees are force-compacted and
// the queue admits only 1 in N offered records. A panicking range or an
// adversarial datagram is contained (quarantined range / abandoned
// datagram), never a crashed daemon.
//
// Cluster mode: -ship-to makes this collector an *edge* that ships every
// decoded record to a central `ipd -listen-delta` core over a resilient
// framed TCP transport (exponential backoff with jitter, heartbeats, a
// bounded shed-oldest spool, exactly-once resume across reconnects). The
// local engine keeps running — an edge answers its own /ipd/* queries while
// the core builds the merged, byte-deterministic central partition.
// -edge-id names this edge (must be stable and unique), -spool-cap bounds
// the records buffered while the core is unreachable, and -heartbeat tunes
// dead-connection detection.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"net/netip"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"ipd"
	"ipd/internal/cliflags"
	"ipd/internal/ipfix"
	"ipd/internal/netflow"
	"ipd/internal/telemetry"
)

func main() {
	var (
		listen     = flag.String("listen", ":2055", "UDP address for NetFlow v5")
		ipfixAddr  = flag.String("ipfix", "", "UDP address for IPFIX ('' disables, registered port :4739)")
		httpAddr   = flag.String("http", ":8080", "HTTP status address ('' disables)")
		exporters  = flag.String("exporters", "", "CSV file mapping exporter address to router id")
		trust      = flag.Bool("trust", false, "auto-register unknown exporters (lab use only)")
		factor4    = flag.Float64("factor4", 0.01, "IPv4 n_cidr factor")
		floor      = flag.Float64("floor", 4, "n_cidr floor")
		q          = flag.Float64("q", 0.95, "quality threshold")
		logLevel   = flag.String("log-level", "warn", "structured log level: debug, info, warn, error (info and below log one line per stage-2 cycle)")
		journalOut = flag.String("journal", "", "append every lifecycle decision as JSON lines to this file ('' disables the sink; the in-memory journal always runs)")
		journalCap = flag.Int("journal-cap", 4096, "in-memory decision journal ring capacity")
		traceCap   = flag.Int("trace-cap", 8192, "span flight-recorder ring capacity (tail it at /ipd/traces)")
		traceSmpl  = flag.Int("trace-sample", 1024, "sample 1-in-N per-record spans (bin, observe); stage-2 cycle phases are always traced")
		queueCap   = flag.Int("queue", 1<<14, "bounded ingest queue capacity (oldest records shed under overload)")
		ckptDir    = flag.String("checkpoint-dir", "", "write periodic CRC-guarded state checkpoints to this directory and restore the newest valid one on startup ('' disables)")
		ckptEvery  = flag.Uint64("checkpoint-every", 10, "checkpoint every N stage-2 cycles (with -checkpoint-dir)")
		govern     = flag.Bool("governor", false, "enable the resource governor (normal/degraded/emergency degradation; implied by -max-ranges or -mem-budget)")
		maxRanges  = flag.Int("max-ranges", 0, "hard cap on active ranges; splits beyond it are deferred (0 = unlimited, implies -governor)")
		memBudget  = flag.Int64("mem-budget", 0, "live-heap budget in bytes for the governor (0 = unlimited, implies -governor)")
		sampleN    = flag.Int("sample", 1, "additional 1-in-N record sampling in front of the ingest queue (1 = keep everything; routers already sample)")
		boostN     = flag.Int("sample-boost", 8, "multiply the -sample denominator by this factor while the governor is degraded or worse")
		tlWindow   = flag.Int("timeline-window", 512, "per-series timeline ring window in cycles; older points are downsampled into coarser tiers (0 disables the timeline)")
		tlEvery    = flag.Int("timeline-every", 1, "sample the timeline every N stage-2 cycles")
		staleAfter = flag.Duration("exporter-stale-after", 3*time.Minute, "raise AlertExporterStale once an exporter feed has been silent this long (statistical time)")
		wlTopK     = flag.Int("workload-topk", 32, "workload profiler heavy-hitter capacity (top-K /24 or /48 aggregates)")
		wlDepth    = flag.Int("workload-maxdepth", 10, "deepest candidate shard depth simulated by the workload profiler (2..10)")
		skewMax    = flag.Duration("skew-max", 5*time.Minute, "raise AlertClockSkew once an exporter's export clock drifts this far from the collector clock")
		mutexProf  = flag.Int("mutexprofile", 0, "runtime mutex/block profiling fraction for /debug/pprof/{mutex,block} (0 disables)")
		sketchOn   = flag.Bool("sketch", false, "enable the fixed-memory sketch tier: under governor pressure, unclassified ranges far from the classification threshold degrade per-IP state to a count-min sketch and hydrate back when calm")
		sketchW    = flag.Int("sketch-width", 1024, "count-min sketch width in counters per row (16..1048576; error bound ε = e/width of window mass)")
		sketchD    = flag.Int("sketch-depth", 4, "count-min sketch depth in rows (1..16; bound failure probability δ = e^-depth)")
		sketchM    = flag.Float64("sketch-exact-margin", 0.05, "keep exact per-IP state while a range's top share is within this margin below q (0 uses the engine default)")
		shipTo     = flag.String("ship-to", "", "ship every ingested record to this core address (host:port) over the resilient delta transport ('' disables cluster mode)")
		edgeID     = flag.String("edge-id", "", "stable unique name for this edge in the cluster handshake (required with -ship-to)")
		spoolCap   = flag.Int("spool-cap", 1<<16, "delta spool capacity in records (waiting + unacked); oldest are shed under overflow")
		heartbeat  = flag.Duration("heartbeat", 2*time.Second, "delta transport keepalive interval; peers declare a connection dead after 4x this")
	)
	flag.Parse()
	logger, err := newLogger(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipd-collector:", err)
		os.Exit(2)
	}
	if err := validateFlags(*ckptEvery, *traceSmpl, *queueCap, *maxRanges, *memBudget, *sampleN, *boostN, *tlWindow, *tlEvery, *mutexProf); err != nil {
		fmt.Fprintln(os.Stderr, "ipd-collector:", err)
		os.Exit(2)
	}
	if err := cliflags.Workload(*wlTopK, *wlDepth); err != nil {
		fmt.Fprintln(os.Stderr, "ipd-collector:", err)
		os.Exit(2)
	}
	if err := cliflags.ExporterHealth(*staleAfter, *skewMax); err != nil {
		fmt.Fprintln(os.Stderr, "ipd-collector:", err)
		os.Exit(2)
	}
	if err := cliflags.DeltaShip(*shipTo, *edgeID, *spoolCap, *heartbeat); err != nil {
		fmt.Fprintln(os.Stderr, "ipd-collector:", err)
		os.Exit(2)
	}
	if err := cliflags.Sketch(*sketchOn, *sketchW, *sketchD, *sketchM); err != nil {
		fmt.Fprintln(os.Stderr, "ipd-collector:", err)
		os.Exit(2)
	}
	if *mutexProf > 0 {
		runtime.SetMutexProfileFraction(*mutexProf)
		runtime.SetBlockProfileRate(*mutexProf)
	}
	cf := ckptFlags{dir: *ckptDir, every: *ckptEvery}
	gf := govFlags{enabled: *govern, maxRanges: *maxRanges, memBudget: *memBudget, sampleN: *sampleN, boostN: *boostN}
	tl := timelineFlags{window: *tlWindow, every: *tlEvery}
	ef := exporterFlags{staleAfter: *staleAfter, skewMax: *skewMax}
	wf := workloadFlags{topK: *wlTopK, maxDepth: *wlDepth}
	sf := shipFlags{target: *shipTo, edgeID: *edgeID, spoolCap: *spoolCap, heartbeat: *heartbeat}
	skf := sketchFlags{enabled: *sketchOn, width: *sketchW, depth: *sketchD, exactMargin: *sketchM}
	if err := run(*listen, *ipfixAddr, *httpAddr, *exporters, *trust, *factor4, *floor, *q, logger, *journalOut, *journalCap, *traceCap, *traceSmpl, *queueCap, cf, gf, tl, ef, wf, sf, skf); err != nil {
		fmt.Fprintln(os.Stderr, "ipd-collector:", err)
		os.Exit(1)
	}
}

// validateFlags chains the shared rule sets from internal/cliflags plus the
// collector-only ingest pipeline checks; the first violated rule wins.
func validateFlags(ckptEvery uint64, traceSample, queueCap, maxRanges int, memBudget int64, sampleN, boostN, tlWindow, tlEvery, mutexProf int) error {
	if err := cliflags.Engine(ckptEvery, traceSample, maxRanges, memBudget, tlWindow, tlEvery, mutexProf); err != nil {
		return err
	}
	return cliflags.Ingest(queueCap, sampleN, boostN)
}

// sketchFlags carries the fixed-memory sketch-tier flag values into run.
type sketchFlags struct {
	enabled     bool
	width       int
	depth       int
	exactMargin float64
}

// shipFlags carries the delta-shipping (cluster edge) flag values into run.
type shipFlags struct {
	target    string // core address; "" disables shipping
	edgeID    string
	spoolCap  int
	heartbeat time.Duration
}

// workloadFlags carries the workload-profiler flag values into run.
type workloadFlags struct {
	topK     int
	maxDepth int
}

// exporterFlags carries the exporter-health flag values into run.
type exporterFlags struct {
	staleAfter time.Duration
	skewMax    time.Duration
}

// govFlags carries the resource-governor flag values into run.
type govFlags struct {
	enabled   bool
	maxRanges int
	memBudget int64
	sampleN   int
	boostN    int
}

// active reports whether a governor should be built (explicitly enabled or
// implied by a budget flag).
func (g govFlags) active() bool { return g.enabled || g.maxRanges > 0 || g.memBudget > 0 }

// ckptFlags carries the crash-safety flag values into run.
type ckptFlags struct {
	dir   string
	every uint64
}

// timelineFlags carries the longitudinal-observability flag values into run.
type timelineFlags struct {
	window int // per-series ring window in cycles; 0 disables the timeline
	every  int // sample every N stage-2 cycles
}

// restoreState implements the startup half of crash recovery: load the
// newest valid checkpoint from mgr into srv, then replay the tail of the
// previous run's journal (events newer than the checkpoint) on top. A cold
// start (no checkpoint) or a missing journal file is not an error.
func restoreState(srv *ipd.Server, mgr *ipd.CheckpointManager, journalPath string) error {
	path, err := mgr.Load(srv.RestoreCheckpoint)
	if err != nil {
		if errors.Is(err, ipd.ErrNoCheckpoint) {
			return nil // cold start
		}
		return fmt.Errorf("checkpoint restore: %v", err)
	}
	fmt.Fprintf(os.Stderr, "ipd-collector: restored checkpoint %s (seq %d)\n", path, srv.Seq())
	if journalPath == "" {
		return nil
	}
	f, err := os.Open(journalPath)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("journal tail: %v", err)
	}
	defer f.Close()
	n, err := ipd.ReplayJournalTail(bufio.NewReader(f), srv.Seq(), srv.ApplyEvent)
	if err != nil {
		return fmt.Errorf("journal tail replay: %v", err)
	}
	mgr.NoteReplayed(n)
	if n > 0 {
		fmt.Fprintf(os.Stderr, "ipd-collector: replayed %d journal events (now at seq %d)\n", n, srv.Seq())
	}
	return nil
}

// newLogger builds the process slog.Logger writing structured text records
// to stderr at the given level.
func newLogger(level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q (want debug, info, warn, or error)", level)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})), nil
}

func run(listen, ipfixAddr, httpAddr, exportersFile string, trust bool, factor4, floor, q float64, logger *slog.Logger, journalOut string, journalCap, traceCap, traceSample, queueCap int, cf ckptFlags, gf govFlags, tl timelineFlags, ef exporterFlags, wf workloadFlags, sf shipFlags, skf sketchFlags) error {
	cfg := ipd.DefaultConfig()
	cfg.NCidrFactor4 = factor4
	cfg.NCidrFloor = floor
	cfg.Q = q
	cfg.Logger = logger
	if skf.enabled {
		cfg.Sketch = true
		cfg.SketchWidth = skf.width
		cfg.SketchDepth = skf.depth
		cfg.SketchExactMargin = skf.exactMargin
	}

	// The bounded ingest queue decouples the UDP receive loops from the
	// engine: Offer never blocks, and under overload the queue sheds the
	// *oldest* buffered records (ipd_records_shed_total) — the statistical
	// time binner would discard stale records anyway, so fresh traffic wins.
	// It is built first so the governor can watch its depth.
	queue := ipd.NewIngestQueue(queueCap)

	// The degradation sampler sits between the collectors and the queue. At
	// the configured -sample rate it is a plain 1-in-N subsampler; while the
	// governor is degraded or worse its denominator is multiplied by
	// -sample-boost, cutting inbound volume without reconfiguring exporters.
	sampler := ipd.NewFlowSampler(gf.sampleN, 0)

	// The governor is built before the server (it is part of the engine
	// config) but registers its metrics after, on the server's registry. It
	// watches all four budget axes here: ranges, per-IP counters, heap, and
	// the ingest-queue depth.
	var gov *ipd.Governor
	if gf.active() {
		var err error
		gov, err = ipd.NewGovernor(ipd.GovernorConfig{
			MaxRanges:  gf.maxRanges,
			MemBudget:  uint64(gf.memBudget),
			QueueCap:   queueCap,
			QueueDepth: queue.Len,
			SketchTier: skf.enabled,
			OnTransition: func(from, to ipd.GovernorState, _ ipd.GovernorUsage) {
				if to == ipd.GovernorNormal {
					sampler.SetBoost(1)
				} else {
					sampler.SetBoost(gf.boostN)
				}
				logger.Warn("governor transition", "from", from.String(), "to", to.String())
			},
		})
		if err != nil {
			return err
		}
		cfg.Governor = gov
		cfg.MaxRanges = gf.maxRanges
	}

	// The decision journal records every range-lifecycle event for the
	// /ipd/* introspection endpoints; -journal adds a durable JSONL sink.
	// With -checkpoint-dir the file is opened in append mode — its existing
	// tail is the replay source for crash recovery, so truncating it would
	// destroy exactly the events a restore needs.
	jopts := ipd.JournalOptions{Capacity: journalCap}
	if journalOut != "" {
		var f *os.File
		var err error
		if cf.dir != "" {
			f, err = os.OpenFile(journalOut, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		} else {
			f, err = os.Create(journalOut)
		}
		if err != nil {
			return err
		}
		defer f.Close()
		jopts.Sink = f
	}
	j := ipd.NewJournal(jopts)
	cfg.OnEvent = j.Record

	// The exporter-health tracker accounts every decoded datagram per
	// exporter feed (sequence-gap loss, clock skew, staleness) and folds
	// them into a per-router coverage score at each cycle tick. The engine
	// consults it at classification time: decisions made over a degraded
	// feed carry a ReasonDegradedCoverage annotation in their events and in
	// /ipd/explain.
	health := ipd.NewExporterHealth(ipd.ExporterHealthOptions{
		StaleAfter: ef.staleAfter,
		SkewMax:    ef.skewMax,
	})
	cfg.Coverage = health.IngressCoverage

	// The workload profiler measures what the scale designs need to know —
	// heavy-hitter aggregates, shard balance per candidate depth, drain-
	// batch locality, end-to-end latency — always on, in fixed memory. It
	// is fed the drained record batches (Server.SetWorkload below) and
	// ticked per cycle by the timeline collector; export-to-ingest latency
	// is corrected by the health tracker's per-router skew estimate.
	wl := ipd.NewWorkloadProfiler(ipd.WorkloadOptions{
		TopK:     wf.topK,
		MaxDepth: wf.maxDepth,
		Skew:     health.RouterSkew,
	})

	// The timeline collector turns the end-of-cycle samples and the journal
	// event stream into longitudinal series plus flap/drift/convergence
	// analytics, served at /ipd/timeline and /ipd/alerts. It also drives
	// the exporter-health cycle ticks and the exporter alerts.
	var tlColl *ipd.TimelineCollector
	if tl.window > 0 {
		tlColl = ipd.NewTimelineCollector(ipd.TimelineOptions{Window: tl.window})
		tlColl.SetExporterHealth(health)
		tlColl.SetWorkload(wl)
		cfg.OnEvent = func(ev ipd.Event) {
			j.Record(ev)
			tlColl.ObserveEvent(ev)
		}
		cfg.OnCycle = tlColl.OnCycle
		cfg.OnCycleEvery = tl.every
	} else {
		// No timeline: still tick the tracker on statistical time so
		// staleness and coverage stay live for /ipd/exporters and the
		// engine's coverage annotations (no alerts without the analyzer).
		cfg.OnCycle = func(s ipd.CycleSample) []ipd.Alert {
			health.Tick(s.At)
			wl.TickCycle(s.Cycle, s.At)
			return nil
		}
	}

	srv, err := ipd.NewServer(cfg, ipd.DefaultStatTimeConfig())
	if err != nil {
		return err
	}
	srv.SetWorkload(wl.ObserveBatch)
	j.RegisterMetrics(srv.Telemetry())
	queue.RegisterMetrics(srv.Telemetry())
	health.RegisterMetrics(srv.Telemetry())
	wl.RegisterMetrics(srv.Telemetry())
	if tlColl != nil {
		tlColl.RegisterMetrics(srv.Telemetry())
		// The ingest-lock contention series (lock wait, batch count) is the
		// one wall-clock input; it lands only in the timeline store, never in
		// journaled events, so replay determinism is unaffected.
		tlColl.SetContention(srv.LockContention)
	}
	if gov != nil {
		gov.RegisterMetrics(srv.Telemetry())
		// During emergency the queue admits 1 in EmergencyAdmitN offered
		// records — deterministic, so the surviving subsample stays unbiased.
		queue.SetAdmission(gov.AdmitIngest)
	}
	if gf.sampleN > 1 || gov != nil {
		sampler.SetMetrics(ipd.NewFlowMetrics(srv.Telemetry()))
	}

	// Crash recovery: restore the newest valid checkpoint, replay the journal
	// tail, and register the periodic checkpoint cadence with the server (it
	// writes at ingest-batch boundaries, off the engine lock, plus a final
	// checkpoint during graceful shutdown).
	if cf.dir != "" {
		mgr, err := ipd.NewCheckpointManager(ipd.CheckpointOptions{Dir: cf.dir, Registry: srv.Telemetry()})
		if err != nil {
			return err
		}
		if err := restoreState(srv, mgr, journalOut); err != nil {
			return err
		}
		srv.SetCheckpoint(mgr, cf.every)
	}

	// The collector is a long-running daemon, so tracing and the cycle
	// watchdog are always on: the flight recorder backs /ipd/traces, the
	// per-phase histograms land on /metrics, and the watchdog turns cycle
	// spans into /healthz (stall) and /readyz (overrun) state.
	tracer := ipd.NewTracer(ipd.TracerOptions{
		Capacity: traceCap,
		SampleN:  traceSample,
		Registry: srv.Telemetry(),
	})
	srv.SetTracer(tracer)
	wd, err := ipd.NewWatchdog(ipd.WatchdogConfig{
		Interval: cfg.T,
		Registry: srv.Telemetry(),
	})
	if err != nil {
		return err
	}
	tracer.SetOnSpan(wd.ObserveSpan)
	if gov != nil {
		// /readyz flips to 503 while the governor is in emergency, steering
		// load balancers away while the engine sheds state.
		wd.SetGovernor(gov)
	}

	// Cluster mode (-ship-to): every decoded record is also offered to the
	// delta sender, which ships it to the core over the resilient transport.
	// The tap sits in front of the degradation sampler and the ingest queue,
	// so the core sees the full edge stream even while local overload
	// sampling thins what this edge's own engine ingests. The governor still
	// gates the spool the way it gates the queue: in emergency, Offer sheds
	// instead of buffering.
	var shipper *ipd.DeltaSender
	if sf.target != "" {
		scfg := ipd.DeltaSenderConfig{
			Target:    sf.target,
			EdgeID:    sf.edgeID,
			SpoolCap:  sf.spoolCap,
			Heartbeat: sf.heartbeat,
			Logf: func(format string, args ...any) {
				logger.Info("delta: "+fmt.Sprintf(format, args...), "edge", sf.edgeID)
			},
		}
		if gov != nil {
			scfg.Gate = func() bool { return gov.State() != ipd.GovernorEmergency }
		}
		var err error
		shipper, err = ipd.NewDeltaSender(scfg)
		if err != nil {
			return err
		}
		shipper.RegisterMetrics(srv.Telemetry())
		if tlColl != nil {
			tlColl.SetCluster(func() ipd.TimelineClusterCounters {
				st := shipper.Stats()
				return ipd.TimelineClusterCounters{
					Sent:          st.Sent,
					Acked:         st.Acked,
					Retransmitted: st.Retransmitted,
					Shed:          st.Shed,
					Reconnects:    st.Reconnects,
					SpoolDepth:    st.SpoolDepth,
				}
			})
		}
		fmt.Fprintf(os.Stderr, "ipd-collector: shipping deltas to %s as edge %q\n", sf.target, sf.edgeID)
	}

	// The collectors feed the queue through the degradation sampler. When no
	// sampling is configured and no governor runs, the sampler is a
	// passthrough; keep the direct Offer in that case to spare the hot path
	// a closure call per record.
	sink := queue.Offer
	if gf.sampleN > 1 || gov != nil {
		sink = func(rec ipd.Record) {
			if sampler.Keep() {
				queue.Offer(rec)
			}
		}
	}
	if shipper != nil {
		inner := sink
		sink = func(rec ipd.Record) {
			shipper.Offer(rec)
			inner(rec)
		}
	}
	coll, err := netflow.NewCollector(sink)
	if err != nil {
		return err
	}
	coll.SetHealth(health)
	var ipfixColl *ipfix.Collector
	if ipfixAddr != "" {
		ipfixColl, err = ipfix.NewCollector(sink)
		if err != nil {
			return err
		}
		ipfixColl.SetHealth(health)
	}
	if exportersFile != "" {
		n, err := loadExporters(coll, ipfixColl, exportersFile)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "ipd-collector: %d exporters registered\n", n)
	}
	if trust {
		enableTrust(coll)
	}

	addrPort, err := coll.Listen(listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ipd-collector: NetFlow v5 on udp://%s\n", addrPort)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 4)
	go func() { errc <- coll.Serve(ctx) }()
	go func() { errc <- srv.RunQueue(ctx, queue) }()
	if ipfixColl != nil {
		ipfixPort, err := ipfixColl.Listen(ipfixAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "ipd-collector: IPFIX on udp://%s\n", ipfixPort)
		go func() { errc <- ipfixColl.Serve(ctx) }()
	}

	if httpAddr != "" {
		reg := srv.Telemetry()
		telemetry.RegisterProcessMetrics(reg)
		registerCollectorMetrics(reg, coll, ipfixColl)

		mux := http.NewServeMux()
		mux.Handle("/healthz", wd.HealthzHandler())
		mux.Handle("/readyz", wd.ReadyzHandler())
		mux.Handle("/metrics", reg.Handler())
		mux.Handle("/debug/vars", reg.JSONHandler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		ih := ipd.NewIntrospectHandler(srv, j)
		ih.SetTraces(tracer.Recorder())
		if gov != nil {
			ih.SetGovernor(gov)
		}
		if tlColl != nil {
			ih.SetTimeline(tlColl)
		}
		ih.SetExporterHealth(health)
		ih.SetWorkload(wl)
		if shipper != nil {
			ih.SetCluster(func() ipd.ClusterStatus {
				st := shipper.Stats()
				return ipd.ClusterStatus{Role: "edge", Sender: &st}
			})
		}
		if skf.enabled {
			ih.SetSketch(srv.SketchStatus)
		}
		mux.Handle("/ipd/", ih)
		mux.HandleFunc("/ranges", func(w http.ResponseWriter, _ *http.Request) {
			mapped := srv.Mapped()
			if err := ipd.WriteOutputSnapshot(w, time.Now(), mapped, nil); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
			eng, bin := srv.Stats()
			st := coll.Stats()
			out := map[string]any{
				"collector": map[string]uint64{
					"datagrams":        st.Datagrams.Load(),
					"records":          st.Records.Load(),
					"malformed":        st.Malformed.Load(),
					"unknown_exporter": st.UnknownExporter.Load(),
					"panics":           st.Panics.Load(),
				},
				"engine": map[string]any{
					"records":         eng.Records,
					"cycles":          eng.Cycles,
					"classifications": eng.Classifications,
					"invalidations":   eng.Invalidations,
					"expirations":     eng.Expirations,
					"splits":          eng.Splits,
					"joins":           eng.Joins,
					"drops":           eng.Drops,
					"active_ranges":   eng.LastCycleRanges,
				},
				"stattime": map[string]uint64{
					"accepted":       bin.Accepted,
					"dropped_stale":  bin.DroppedStale,
					"dropped_future": bin.DroppedFuture,
				},
				"exporters": health.Summary(),
			}
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(out)
		})
		httpSrv := &http.Server{Addr: httpAddr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
		go func() {
			<-ctx.Done()
			shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = httpSrv.Shutdown(shutdownCtx)
		}()
		go func() {
			if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				errc <- err
			}
		}()
		fmt.Fprintf(os.Stderr, "ipd-collector: status on http://%s\n", httpAddr)
	}

	err = <-errc
	stop()
	queue.Close()
	if shipper != nil {
		// Graceful shutdown flushes the spool: stop accepting new records,
		// give the supervisor a bounded window to ship and collect acks for
		// what is buffered, then tear the connection down. Unshipped records
		// after the window are lost to the core (never to the local engine).
		shipper.CloseInput()
		drainCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if derr := shipper.Drain(drainCtx); derr != nil {
			st := shipper.Stats()
			fmt.Fprintf(os.Stderr, "ipd-collector: delta drain: %v (%d records unacked)\n", derr, st.SpoolDepth)
		}
		cancel()
		_ = shipper.Close()
	}
	if err == context.Canceled {
		return nil
	}
	return err
}

// registerCollectorMetrics exposes the UDP collectors' atomic counters on
// the shared registry, read lazily at scrape time (the IPFIX collector may
// be nil).
func registerCollectorMetrics(reg *ipd.TelemetryRegistry, coll *netflow.Collector, ipfixColl *ipfix.Collector) {
	nf := coll.Stats()
	reg.CounterFunc("ipd_netflow_datagrams_total",
		"NetFlow v5 datagrams received.", func() float64 { return float64(nf.Datagrams.Load()) })
	reg.CounterFunc("ipd_netflow_records_total",
		"NetFlow v5 records parsed.", func() float64 { return float64(nf.Records.Load()) })
	reg.CounterFunc("ipd_netflow_malformed_total",
		"Malformed NetFlow v5 datagrams.", func() float64 { return float64(nf.Malformed.Load()) })
	reg.CounterFunc("ipd_netflow_unknown_exporter_total",
		"NetFlow v5 datagrams from unregistered exporters.", func() float64 { return float64(nf.UnknownExporter.Load()) })
	reg.CounterFunc("ipd_netflow_panics_total",
		"NetFlow v5 datagrams abandoned after a contained decode/sink panic.", func() float64 { return float64(nf.Panics.Load()) })
	if ipfixColl == nil {
		return
	}
	ix := ipfixColl.Stats()
	reg.CounterFunc("ipd_ipfix_messages_total",
		"IPFIX messages received.", func() float64 { return float64(ix.Messages.Load()) })
	reg.CounterFunc("ipd_ipfix_records_total",
		"IPFIX data records parsed.", func() float64 { return float64(ix.Records.Load()) })
	reg.CounterFunc("ipd_ipfix_malformed_total",
		"Malformed IPFIX messages.", func() float64 { return float64(ix.Malformed.Load()) })
	reg.CounterFunc("ipd_ipfix_unknown_template_total",
		"IPFIX records skipped for unknown templates.", func() float64 { return float64(ix.UnknownTemplate.Load()) })
	reg.CounterFunc("ipd_ipfix_panics_total",
		"IPFIX messages abandoned after a contained decode/sink panic.", func() float64 { return float64(ix.Panics.Load()) })
}

// loadExporters reads "address,router_id" lines and registers them with
// both collectors (the IPFIX one may be nil).
func loadExporters(c *netflow.Collector, ic *ipfix.Collector, path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	n := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 2 {
			return n, fmt.Errorf("exporters: bad line %q", line)
		}
		addr, err := netip.ParseAddr(strings.TrimSpace(parts[0]))
		if err != nil {
			return n, fmt.Errorf("exporters: %v", err)
		}
		id, err := strconv.ParseUint(strings.TrimSpace(parts[1]), 10, 16)
		if err != nil {
			return n, fmt.Errorf("exporters: %v", err)
		}
		c.RegisterExporter(addr, ipd.RouterID(id))
		if ic != nil {
			ic.RegisterExporter(addr, ipd.RouterID(id))
		}
		n++
	}
	return n, sc.Err()
}

// enableTrust auto-registers unknown exporters with sequential router IDs
// (lab setups only; production must pre-register its border routers).
func enableTrust(c *netflow.Collector) {
	var mu sync.Mutex
	next := ipd.RouterID(1)
	c.SetUnknownPolicy(func(addr netip.Addr) (ipd.RouterID, bool) {
		mu.Lock()
		defer mu.Unlock()
		id := next
		next++
		fmt.Fprintf(os.Stderr, "ipd-collector: auto-registered exporter %v as router %d\n", addr, id)
		return id, true
	})
}
