// Command ipd-bench regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index and EXPERIMENTS.md
// for recorded paper-vs-measured outcomes).
//
// Usage:
//
//	ipd-bench fig6                # one experiment
//	ipd-bench all                 # everything except the full param study
//	ipd-bench paramstudy -full    # the 180-configuration factorial
//	ipd-bench fig16 -points 24    # longer longitudinal series
//
// Global flags (before the subcommand): -seed, -rate, -hours, -quick.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"ipd/internal/experiments"
)

type runner func(opts experiments.Options, points int, every time.Duration, full bool) error

// perfNote carries the -note flag into the perf subcommand (appended to the
// generated BENCH JSON note, e.g. to record same-session A/B evidence).
var perfNote string

var commands = map[string]struct {
	help string
	run  runner
}{
	"fig2": {"stability duration per prefix (CDF)", func(o experiments.Options, _ int, _ time.Duration, _ bool) error {
		_, err := experiments.Fig2StabilityDuration(o)
		return err
	}},
	"fig3": {"ingress router count per prefix: BGP vs observed", func(o experiments.Options, _ int, _ time.Duration, _ bool) error {
		_, err := experiments.Fig3IngressCounts(o)
		return err
	}},
	"fig4": {"traffic share of first-ranked ingress per /24", func(o experiments.Options, _ int, _ time.Duration, _ bool) error {
		_, err := experiments.Fig4DominantShare(o)
		return err
	}},
	"fig5": {"algorithm walk-through (split cascade)", func(o experiments.Options, _ int, _ time.Duration, _ bool) error {
		_, err := experiments.Fig5Walkthrough(o)
		return err
	}},
	"fig6": {"classification accuracy vs ground truth", func(o experiments.Options, _ int, _ time.Duration, _ bool) error {
		_, err := experiments.Fig6Accuracy(o)
		return err
	}},
	"fig7": {"miss taxonomy for TOP5 ASes", func(o experiments.Options, _ int, _ time.Duration, _ bool) error {
		_, err := experiments.Fig7MissTaxonomy(o)
		return err
	}},
	"fig8": {"miss timelines (maintenance spikes, diurnal CDNs)", func(o experiments.Options, _ int, _ time.Duration, _ bool) error {
		_, err := experiments.Fig8MissTimeline(o)
		return err
	}},
	"fig9": {"IPD range sizes vs BGP prefix sizes", func(o experiments.Options, _ int, _ time.Duration, _ bool) error {
		_, err := experiments.Fig9RangeSizes(o)
		return err
	}},
	"fig10": {"longitudinal matching/stable ratios", func(o experiments.Options, p int, e time.Duration, _ bool) error {
		_, err := experiments.Fig10Longitudinal(o, p, e)
		return err
	}},
	"fig11": {"network size by daytime (TOP5)", func(o experiments.Options, _ int, _ time.Duration, _ bool) error {
		_, err := experiments.Fig11Daytime(o)
		return err
	}},
	"fig12": {"network size by daytime (AS4 CDN)", func(o experiments.Options, _ int, _ time.Duration, _ bool) error {
		_, err := experiments.Fig12CDNBehavior(o)
		return err
	}},
	"fig13": {"reaction to change case study (also fig14)", func(o experiments.Options, _ int, _ time.Duration, _ bool) error {
		_, err := experiments.Fig13ReactionToChange(o)
		return err
	}},
	"fig14": {"alias of fig13 (detailed range view)", func(o experiments.Options, _ int, _ time.Duration, _ bool) error {
		_, err := experiments.Fig13ReactionToChange(o)
		return err
	}},
	"fig15": {"elephant-range stability", func(o experiments.Options, p int, e time.Duration, _ bool) error {
		_, err := experiments.Fig15Elephants(o, p, e)
		return err
	}},
	"fig16": {"ingress/egress symmetry over time", func(o experiments.Options, p int, e time.Duration, _ bool) error {
		_, err := experiments.Fig16Symmetry(o, p, e)
		return err
	}},
	"fig17": {"tier-1 peering violations over time", func(o experiments.Options, p int, e time.Duration, _ bool) error {
		// Quarterly spacing by default: the growth inflections sit at
		// months ~20 and ~30 of the archive.
		if e == 30*24*time.Hour {
			e = 90 * 24 * time.Hour
		}
		_, err := experiments.Fig17Violations(o, p, e)
		return err
	}},
	"baselines": {"IPD vs BGP-symmetry vs static /24 baselines", func(o experiments.Options, _ int, _ time.Duration, _ bool) error {
		if o.Hours > 6 {
			o.Hours = 6 // the comparison replays its own stream; 6 h suffices
		}
		_, err := experiments.BaselineComparison(o)
		return err
	}},
	"specificity": {"§5.5 IPD-vs-BGP prefix correlation", func(o experiments.Options, _ int, _ time.Duration, _ bool) error {
		_, err := experiments.Specificity55(o)
		return err
	}},
	"table1": {"default parameter table", func(o experiments.Options, _ int, _ time.Duration, _ bool) error {
		experiments.Table1(o)
		return nil
	}},
	"table3": {"raw output trace sample", func(o experiments.Options, _ int, _ time.Duration, _ bool) error {
		_, err := experiments.Table3Rows(o, 15)
		return err
	}},
	"paramstudy": {"Appendix A factorial parameter study", func(o experiments.Options, _ int, _ time.Duration, full bool) error {
		grid := experiments.ScreeningGrid()
		if full {
			grid = experiments.FullGrid()
		}
		_, err := experiments.ParamStudy(o, grid)
		return err
	}},
	"perf": {"stage-1 hot-path timing gate (BENCH JSON on stdout)", func(o experiments.Options, _ int, _ time.Duration, _ bool) error {
		return runPerf(o.Seed, perfNote)
	}},
	"throughput": {"§5.7 ingest throughput and memory", func(o experiments.Options, _ int, _ time.Duration, full bool) error {
		n := 1_000_000
		if full {
			n = 5_000_000
		}
		_, err := experiments.Throughput(o, n)
		return err
	}},
}

func main() {
	var (
		seed   = flag.Int64("seed", 1, "scenario seed")
		rate   = flag.Int("rate", 5000, "average sampled flows per minute")
		hours  = flag.Int("hours", 25, "day-run length (paper: 25h)")
		quick  = flag.Bool("quick", false, "shrink runs for a fast look")
		points = flag.Int("points", 12, "longitudinal snapshot count (fig10/15/16/17)")
		every  = flag.Duration("every", 30*24*time.Hour, "longitudinal snapshot spacing")
		full   = flag.Bool("full", false, "full-size variant (paramstudy, throughput)")
	)
	flag.StringVar(&perfNote, "note", "", "extra text appended to the perf gate note")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	name := flag.Arg(0)

	opts := experiments.DefaultOptions()
	opts.Seed = *seed
	opts.FlowsPerMinute = *rate
	opts.Hours = *hours
	opts.Writer = os.Stdout
	if *quick {
		opts = opts.Quick()
		opts.Writer = os.Stdout
	}

	if name == "all" {
		names := make([]string, 0, len(commands))
		for n := range commands {
			if n == "fig14" || n == "paramstudy" || n == "throughput" || n == "perf" {
				continue // fig14 aliases fig13; the heavy ones and the
				// machine-readable perf gate run on demand
			}
			names = append(names, n)
		}
		sort.Strings(names)
		names = append(names, "paramstudy", "throughput")
		for _, n := range names {
			fmt.Println()
			if err := commands[n].run(opts, *points, *every, *full); err != nil {
				fmt.Fprintf(os.Stderr, "ipd-bench %s: %v\n", n, err)
				os.Exit(1)
			}
		}
		return
	}
	cmd, ok := commands[name]
	if !ok {
		fmt.Fprintf(os.Stderr, "ipd-bench: unknown experiment %q\n\n", name)
		usage()
		os.Exit(2)
	}
	if err := cmd.run(opts, *points, *every, *full); err != nil {
		fmt.Fprintf(os.Stderr, "ipd-bench %s: %v\n", name, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: ipd-bench [flags] <experiment>\n\nexperiments:\n")
	names := make([]string, 0, len(commands))
	for n := range commands {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", n, commands[n].help)
	}
	fmt.Fprintf(os.Stderr, "  %-12s run everything\n\nflags:\n", "all")
	flag.PrintDefaults()
}
