// The perf subcommand regenerates the checked-in BENCH_*.json hot-path
// timing record: the stage-1 Observe path bare, with a tracer attached, and
// with the decision journal attached. Runs are min-of-5 over ~2 s timed
// chunks (min, not median: the floor is the least-noisy estimator for a
// CPU-bound loop on a shared runner). Output is the BENCH JSON on stdout —
// redirect into BENCH_3.json to refresh the gate reference.
package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"time"

	"ipd"
	"ipd/internal/trafficgen"
)

const (
	perfReps      = 5
	perfChunk     = 100_000
	perfChunkTime = 2 * time.Second
	perfRecords   = 500_000
	// perfBaselineObserve is the PR-2 BenchmarkObserve reference this PR's
	// acceptance gate compares against (BENCH_2.json).
	perfBaselineObserve = 360.8
)

// perfRecordSet mirrors bench_test.go's benchRecords: a deterministic
// synthetic workload at deployment-like density.
func perfRecordSet(seed int64) ([]ipd.Record, error) {
	scn, err := trafficgen.NewScenario(trafficgen.DefaultSpec())
	if err != nil {
		return nil, err
	}
	gen := trafficgen.GenConfig{FlowsPerMinute: 200_000, NoiseFraction: 0.002, Seed: seed, Diurnal: false}
	records := make([]ipd.Record, 0, perfRecords)
	start := scn.Start.Add(20 * time.Hour)
	err = scn.Stream(start, start.Add(time.Duration(perfRecords/200_000+2)*time.Minute), gen, func(r ipd.Record) bool {
		records = append(records, r)
		return len(records) < perfRecords
	})
	if err != nil {
		return nil, err
	}
	return records, nil
}

func perfConfig() ipd.Config {
	cfg := ipd.DefaultConfig()
	cfg.NCidrFactor4 = 0.01
	cfg.NCidrFloor = 4
	return cfg
}

// perfMeasure times Observe over records against a fresh engine per rep and
// returns the best (minimum) ns/op across perfReps reps.
func perfMeasure(records []ipd.Record, mk func() (*ipd.Engine, error)) (float64, error) {
	best := math.Inf(1)
	for r := 0; r < perfReps; r++ {
		eng, err := mk()
		if err != nil {
			return 0, err
		}
		var ops int
		i := 0
		start := time.Now()
		for time.Since(start) < perfChunkTime {
			for j := 0; j < perfChunk; j++ {
				eng.Observe(records[i%len(records)])
				i++
			}
			ops += perfChunk
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(ops)
		if ns < best {
			best = ns
		}
	}
	return best, nil
}

// cpuModel extracts the CPU model string (Linux /proc/cpuinfo; best-effort).
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return runtime.GOARCH
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return runtime.GOARCH
}

// benchReport is the BENCH_*.json shape (the field order matches the
// checked-in BENCH_2.json so refreshes diff cleanly).
type benchReport struct {
	PR                  int                `json:"pr"`
	Date                string             `json:"date"`
	Go                  string             `json:"go"`
	CPU                 string             `json:"cpu"`
	Benchtime           string             `json:"benchtime"`
	Count               int                `json:"count"`
	Note                string             `json:"note"`
	BaselinePR2         map[string]float64 `json:"baseline_pr2"`
	Results             map[string]float64 `json:"results"`
	DisabledOverheadPct float64            `json:"tracing_disabled_overhead_pct"`
	EnabledOverheadPct  float64            `json:"tracing_enabled_overhead_pct"`
}

func runPerf(seed int64, extraNote string) error {
	records, err := perfRecordSet(seed)
	if err != nil {
		return err
	}

	observe, err := perfMeasure(records, func() (*ipd.Engine, error) {
		return ipd.NewEngine(perfConfig())
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ipd-bench perf: Observe           %.1f ns/op (min of %d)\n", observe, perfReps)

	traced, err := perfMeasure(records, func() (*ipd.Engine, error) {
		cfg := perfConfig()
		cfg.Tracer = ipd.NewTracer(ipd.TracerOptions{})
		return ipd.NewEngine(cfg)
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ipd-bench perf: ObserveTraced     %.1f ns/op (min of %d)\n", traced, perfReps)

	journaled, err := perfMeasure(records, func() (*ipd.Engine, error) {
		cfg := perfConfig()
		j := ipd.NewJournal(ipd.JournalOptions{})
		cfg.OnEvent = j.Record
		return ipd.NewEngine(cfg)
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ipd-bench perf: ObserveJournaled  %.1f ns/op (min of %d)\n", journaled, perfReps)

	pct := func(x, base float64) float64 { return math.Round((x/base-1)*1000) / 10 }
	note := fmt.Sprintf("min of %d runs; gate: BenchmarkObserve (nil tracer, disabled path) within 2%% of the PR-2 baseline (%.1f ns/op); the recorded overhead pct vs a different session's baseline includes machine drift — gate against a same-session A/B",
		perfReps, perfBaselineObserve)
	if extraNote != "" {
		note += "; " + extraNote
	}
	out := benchReport{
		PR:        3,
		Date:      time.Now().UTC().Format("2006-01-02"),
		Go:        runtime.Version(),
		CPU:       cpuModel(),
		Benchtime: perfChunkTime.String(),
		Count:     perfReps,
		Note:      note,
		BaselinePR2: map[string]float64{
			"BenchmarkObserve_ns_per_op": perfBaselineObserve,
		},
		Results: map[string]float64{
			"BenchmarkObserve_ns_per_op":          math.Round(observe*10) / 10,
			"BenchmarkObserveTraced_ns_per_op":    math.Round(traced*10) / 10,
			"BenchmarkObserveJournaled_ns_per_op": math.Round(journaled*10) / 10,
		},
		DisabledOverheadPct: pct(observe, perfBaselineObserve),
		EnabledOverheadPct:  pct(traced, observe),
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
