// Package ipd is an open reimplementation of IPD — Ingress Point Detection
// at ISPs (Mehner, Reelfs, Poese, Hohlfeld; ACM SIGCOMM 2024). IPD analyzes
// sampled flow-level traffic from all border routers of a network and
// partitions the IP address space into dynamic ranges, each classified to
// the ingress point (router, interface) its traffic enters through.
//
// # Quick start
//
//	cfg := ipd.DefaultConfig()        // Table-1 deployment parameters
//	eng, err := ipd.NewEngine(cfg)    // deterministic, virtual-time core
//	...
//	eng.Feed(ipd.Record{Ts: ts, Src: src, In: ipd.Ingress{Router: 7, Iface: 2}})
//	for _, r := range eng.Mapped() {
//	    fmt.Println(r.Prefix, r.Ingress, r.Confidence)
//	}
//
// For an online deployment shape (streaming records, concurrent snapshot
// readers, statistical-time cleaning of router clock drift) use NewServer
// and Server.Run.
//
// The package re-exports the internal building blocks a downstream user
// needs: the engine (internal/core), the flow-record model and trace codecs
// (internal/flow), the statistical-time pre-processor (internal/stattime),
// the ISP topology model used for LAG-bundle folding and miss taxonomy
// (internal/topology), the Appendix-B output-trace codec (internal/export),
// and a synthetic tier-1 workload generator (internal/trafficgen) that
// every published figure of the paper can be regenerated against — see
// cmd/ipd-bench and EXPERIMENTS.md.
package ipd

import (
	"io"
	"time"

	"ipd/internal/core"
	"ipd/internal/delta"
	"ipd/internal/exphealth"
	"ipd/internal/export"
	"ipd/internal/flow"
	"ipd/internal/governor"
	"ipd/internal/introspect"
	"ipd/internal/journal"
	"ipd/internal/persist"
	"ipd/internal/stattime"
	"ipd/internal/telemetry"
	"ipd/internal/timeline"
	"ipd/internal/topology"
	"ipd/internal/trace"
	"ipd/internal/trafficgen"
	"ipd/internal/trie"
	"ipd/internal/workload"
)

// Core algorithm types (see internal/core for full documentation).
type (
	// Config holds the IPD parameters of Table 1 (cidr_max, n_cidr
	// factors, q, t, e, decay) plus implementation switches.
	Config = core.Config
	// Engine is a deterministic, virtual-time IPD instance.
	Engine = core.Engine
	// Server wraps an Engine with the deployment's two-thread structure
	// and statistical-time input cleaning.
	Server = core.Server
	// RangeInfo is the externally visible state of one IPD range (one
	// Appendix-B output row).
	RangeInfo = core.RangeInfo
	// Stats are cumulative engine counters.
	Stats = core.Stats
	// Event is one range-lifecycle decision (sequence number, cycle id,
	// kind, prefix, reason) delivered via Config.OnEvent.
	Event = core.Event
	// EventKind enumerates Event types.
	EventKind = core.EventKind
	// Reason records which threshold fired for an event, with observed vs
	// configured values.
	Reason = core.Reason
	// ReasonCode identifies the threshold comparison behind a Reason.
	ReasonCode = core.ReasonCode
	// Explanation answers "why is this IP classified this way" from live
	// engine state (Engine.Explain / Server.Explain).
	Explanation = core.Explanation
	// IngressShare is one ingress's vote within a range.
	IngressShare = core.IngressShare
	// DecayFunc computes the idle-range decay factor.
	DecayFunc = core.DecayFunc
	// IngressMapper folds physical interfaces into logical ingresses
	// (LAG bundles).
	IngressMapper = core.IngressMapper
	// CycleSample is the end-of-cycle observation delivered via
	// Config.OnCycle: engine shape, lifecycle deltas, per-ingress traffic
	// shares, and the governor snapshot.
	CycleSample = core.CycleSample
	// IngressCycleStat is the per-ingress slice of a CycleSample.
	IngressCycleStat = core.IngressCycleStat
	// Alert is one analytics decision returned by Config.OnCycle; the
	// engine journals each as an alert lifecycle event.
	Alert = core.Alert
	// AlertKind enumerates the analytics alerts (flap, drift, exporter
	// loss/stale/skew).
	AlertKind = core.AlertKind
	// SketchStatus is the fixed-memory sketch tier's status (sizing, ε/δ
	// bound, degrade/hydrate counters) served at /ipd/sketch.
	SketchStatus = core.SketchStatus
)

// Event kinds (the full range lifecycle).
const (
	EventClassified   = core.EventClassified
	EventInvalidated  = core.EventInvalidated
	EventExpired      = core.EventExpired
	EventSplit        = core.EventSplit
	EventJoined       = core.EventJoined
	EventCreated      = core.EventCreated
	EventDropped      = core.EventDropped
	EventCompacted    = core.EventCompacted
	EventQuarantined  = core.EventQuarantined
	EventGovernor     = core.EventGovernor
	EventAlertRaised  = core.EventAlertRaised
	EventAlertCleared = core.EventAlertCleared
	EventStateMode    = core.EventStateMode
)

// State-mode details carried by EventStateMode events (the Detail field).
const (
	StateModeSketched = core.StateModeSketched
	StateModeExact    = core.StateModeExact
)

// Alert kinds (the timeline analytics).
const (
	AlertFlap          = core.AlertFlap
	AlertDrift         = core.AlertDrift
	AlertExporterLoss  = core.AlertExporterLoss
	AlertExporterStale = core.AlertExporterStale
	AlertClockSkew     = core.AlertClockSkew
	AlertHotPrefix     = core.AlertHotPrefix
	AlertSketchShare   = core.AlertSketchShare
)

// Reason codes (which threshold comparison decided an event).
const (
	ReasonNone             = core.ReasonNone
	ReasonRoot             = core.ReasonRoot
	ReasonPrevalentIngress = core.ReasonPrevalentIngress
	ReasonShareBelowQ      = core.ReasonShareBelowQ
	ReasonDecayedOut       = core.ReasonDecayedOut
	ReasonMixedIngress     = core.ReasonMixedIngress
	ReasonSiblingsAgree    = core.ReasonSiblingsAgree
	ReasonEmptyIdle        = core.ReasonEmptyIdle
	ReasonOverBudget       = core.ReasonOverBudget
	ReasonBudgetRecovered  = core.ReasonBudgetRecovered
	ReasonForcedCompaction = core.ReasonForcedCompaction
	ReasonPanicRecovered   = core.ReasonPanicRecovered
	ReasonFlapRate         = core.ReasonFlapRate
	ReasonShareDrift       = core.ReasonShareDrift
	ReasonDegradedCoverage = core.ReasonDegradedCoverage
	ReasonExporterLoss     = core.ReasonExporterLoss
	ReasonExporterStale    = core.ReasonExporterStale
	ReasonClockSkew        = core.ReasonClockSkew
	ReasonHotPrefix        = core.ReasonHotPrefix
	ReasonSketched         = core.ReasonSketched
)

// Resource-governor types. A Governor tracks live resource budgets (active
// ranges, per-IP counter population, ingest-queue depth, heap bytes) and
// drives a normal → degraded → emergency state machine with hysteresis;
// attach it via Config.Governor and the engine evaluates it every stage-2
// cycle, deferring splits while degraded and force-compacting low-traffic
// subtrees plus shedding ingest while in emergency. Transitions are
// journaled as EventGovernor events so replay reconstructs governed runs.
type (
	// Governor is the budget-tracking degradation state machine.
	Governor = governor.Governor
	// GovernorConfig sets the budgets, thresholds, and hysteresis.
	GovernorConfig = governor.Config
	// GovernorState is the operating mode: normal, degraded, or emergency.
	GovernorState = governor.State
	// GovernorUsage is one point-in-time resource reading.
	GovernorUsage = governor.Usage
	// GovernorSnapshot is the JSON view served at /ipd/governor.
	GovernorSnapshot = governor.Snapshot
	// GovernorBudgetStatus is one budget axis inside a snapshot.
	GovernorBudgetStatus = governor.BudgetStatus
)

// Governor states.
const (
	GovernorNormal    = governor.StateNormal
	GovernorDegraded  = governor.StateDegraded
	GovernorEmergency = governor.StateEmergency
)

// NewGovernor validates cfg, applies threshold defaults (0.8 degraded,
// 0.95 emergency, 0.6 recover, 3 hold cycles), and returns a governor in
// the normal state. Wire it into an engine via Config.Governor, into the
// ingest queue via IngestQueue.SetAdmission(g.AdmitIngest), into the
// watchdog via Watchdog.SetGovernor, and into the introspection surface via
// IntrospectHandler.SetGovernor.
func NewGovernor(cfg GovernorConfig) (*Governor, error) { return governor.New(cfg) }

// Decision-provenance types. A Journal records the engine's lifecycle
// events (attach it via Config.OnEvent = j.Record); the introspection
// handler serves the /ipd/* explain API over a live source and its journal;
// a Replayer reconstructs the partition and classification state from a
// recorded decision log.
type (
	// Journal is a bounded ring of lifecycle events with per-prefix
	// history and an optional JSONL sink.
	Journal = journal.Journal
	// JournalOptions configures a Journal (capacity, sink, telemetry).
	JournalOptions = journal.Options
	// RangeView is the replayed, event-determined state of one range.
	RangeView = journal.RangeView
	// Replayer folds a decision log back into the partition it describes.
	Replayer = journal.Replayer
	// IntrospectSource is the live engine view the /ipd/* handlers read;
	// *Server implements it.
	IntrospectSource = introspect.Source
	// IntrospectHandler serves /ipd/ranges, /ipd/range, /ipd/explain,
	// /ipd/events, /ipd/traces, /ipd/timeline, and /ipd/alerts.
	IntrospectHandler = introspect.Handler
)

// Longitudinal-observability types. A TimelineCollector samples the engine at
// the end of every stage-2 cycle into a bounded multi-resolution time-series
// store and runs the flap/drift/convergence analytics over the history. Wire
// it with Config.OnCycle = c.OnCycle, chain c.ObserveEvent into the
// Config.OnEvent callback after the journal, and attach it to the
// introspection surface via IntrospectHandler.SetTimeline (enabling
// /ipd/timeline and /ipd/alerts).
type (
	// TimelineCollector binds the store and analytics to an engine.
	TimelineCollector = timeline.Collector
	// TimelineOptions configures a TimelineCollector (ring window,
	// downsample factor, series cap, analyzer thresholds).
	TimelineOptions = timeline.Options
	// TimelineAnalyzerConfig sets the flap/drift/convergence thresholds and
	// hysteresis.
	TimelineAnalyzerConfig = timeline.AnalyzerConfig
	// TimelineStore is the bounded multi-tier time-series store.
	TimelineStore = timeline.Store
	// TimelinePoint is one aggregated observation of a series.
	TimelinePoint = timeline.Point
	// TimelineSeries is the windowed view of one series.
	TimelineSeries = timeline.Series
	// TimelineAlertsView is the /ipd/alerts response body.
	TimelineAlertsView = timeline.AlertsView
)

// NewTimelineCollector returns a timeline collector with its own bounded
// store.
func NewTimelineCollector(opts TimelineOptions) *TimelineCollector {
	return timeline.NewCollector(opts)
}

// Exporter-health types. An ExporterHealth tracker accounts every decoded
// NetFlow datagram and IPFIX message per exporter feed — sequence-gap loss
// (with 32-bit wraparound, reordering, and restart detection), export-clock
// skew, record-rate drift, template churn — and folds them into a per-feed
// coverage score at each stage-2 cycle tick. Wire the collectors via their
// SetHealth methods, the engine via Config.Coverage =
// t.IngressCoverage (classifications made over a degraded feed carry a
// ReasonDegradedCoverage annotation), the timeline via
// TimelineCollector.SetExporterHealth (which drives the cycle ticks and the
// exporter-loss/stale/clock-skew alerts), and the introspection surface via
// IntrospectHandler.SetExporterHealth (/ipd/exporters).
type (
	// ExporterHealth is the per-exporter feed health tracker.
	ExporterHealth = exphealth.Tracker
	// ExporterHealthOptions parameterizes the tracker (stale-after, skew
	// limit, coverage floor, EWMA alphas, sequence tolerances).
	ExporterHealthOptions = exphealth.Options
	// ExporterKey identifies one feed (protocol, router, IPFIX domain).
	ExporterKey = exphealth.Key
	// ExporterCycleStat is one feed's per-cycle fold (loss fraction, rate
	// drift, skew, staleness, coverage).
	ExporterCycleStat = exphealth.CycleStat
	// ExporterSnapshot is the /ipd/exporters response body.
	ExporterSnapshot = exphealth.Snapshot
	// ExporterFeedSnapshot is one feed inside an ExporterSnapshot.
	ExporterFeedSnapshot = exphealth.FeedSnapshot
	// ExporterSummary holds the headline feed totals for /stats blocks.
	ExporterSummary = exphealth.Summary
)

// NewExporterHealth returns an exporter-health tracker with opts' zero
// values replaced by the documented defaults (3m stale-after, 5m skew limit,
// 0.9 coverage floor).
func NewExporterHealth(opts ExporterHealthOptions) *ExporterHealth {
	return exphealth.New(opts)
}

// Workload-profiling types. A WorkloadProfiler is the always-on, fixed-
// memory workload observatory: top-K heavy-hitter /24 (IPv6 /48) aggregates
// with per-ingress attribution and epoch decay, a simulated shard-balance
// histogram per candidate shard depth with a shard-plan recommendation,
// drain-batch locality stats (the LPM-cache premise), and skew-corrected
// export-to-ingest/-commit latency. Feed it from Server.SetWorkload (batch
// drain path) or per record via ObserveRecord; drive cycles via
// TimelineCollector.SetWorkload (which also runs the AlertHotPrefix
// hysteresis); serve it at /ipd/workload via IntrospectHandler.SetWorkload;
// expose ipd_workload_* metrics via RegisterMetrics.
type (
	// WorkloadProfiler is the workload profiler.
	WorkloadProfiler = workload.Profiler
	// WorkloadOptions parameterizes the profiler (top-K, max shard depth,
	// sample thinning, decay cadence, clock and skew sources).
	WorkloadOptions = workload.Options
	// WorkloadSnapshot is the /ipd/workload response body.
	WorkloadSnapshot = workload.Snapshot
	// WorkloadCycleStats is the deterministic per-cycle view TickCycle
	// returns (input of the hot-prefix alert machine).
	WorkloadCycleStats = workload.CycleStats
	// WorkloadShardPlan is the shard-depth recommendation inside snapshots
	// and cycle stats.
	WorkloadShardPlan = workload.ShardPlan
)

// NewWorkloadProfiler returns a workload profiler with opts' zero values
// replaced by the documented defaults (top-K 32, max depth 10, 1-in-8
// thinning, decay every 16 cycles).
func NewWorkloadProfiler(opts WorkloadOptions) *WorkloadProfiler {
	return workload.New(opts)
}

// Pipeline-tracing types. A Tracer threads low-overhead spans through the
// whole pipeline — flow decode, statistical-time binning, stage-1 Observe
// (all sampled 1-in-N), and every stage-2 cycle phase — into a bounded
// lock-free flight recorder. Attach one via Config.Tracer, the SetTracer
// methods of TraceReader and the stattime binner, and
// IntrospectHandler.SetTraces; subscribe a Watchdog with Tracer.SetOnSpan to
// derive /healthz (stall) and /readyz (overrun) from the cycle spans.
type (
	// Tracer produces pipeline spans; nil is a valid disabled tracer.
	Tracer = trace.Tracer
	// TracerOptions configures a Tracer (ring capacity, 1-in-N sample
	// rate, seed, metrics registry).
	TracerOptions = trace.Options
	// TraceSpan is one recorded pipeline interval.
	TraceSpan = trace.Span
	// TracePhase identifies the pipeline stage a span measures.
	TracePhase = trace.Phase
	// TraceRecorder is the bounded lock-free flight recorder spans land in.
	TraceRecorder = trace.Recorder
	// Watchdog derives pipeline health from stage-2 cycle spans.
	Watchdog = core.Watchdog
	// WatchdogConfig parameterizes the watchdog (bucket interval, overrun
	// fraction, stall factor).
	WatchdogConfig = core.WatchdogConfig
)

// NewTracer returns a pipeline tracer; wire it via Config.Tracer (cycle and
// Observe spans), TraceReader.SetTracer, and the stattime binner's
// SetTracer.
func NewTracer(opts TracerOptions) *Tracer { return trace.New(opts) }

// NewWatchdog returns a cycle watchdog; subscribe it to a tracer with
// tracer.SetOnSpan(w.ObserveSpan) and mount w.HealthzHandler /
// w.ReadyzHandler on the debug mux.
func NewWatchdog(cfg WatchdogConfig) (*Watchdog, error) { return core.NewWatchdog(cfg) }

// WriteChromeTrace writes spans in Chrome trace-event format, loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing.
func WriteChromeTrace(w io.Writer, spans []TraceSpan) error { return trace.WriteChrome(w, spans) }

// NewJournal returns a decision journal; attach it to an engine with
// Config.OnEvent = j.Record (respecting the OnEvent reentrancy contract —
// the journal's Record already does).
func NewJournal(opts JournalOptions) *Journal { return journal.New(opts) }

// NewReplayer returns an empty decision-log replayer.
func NewReplayer() *Replayer { return journal.NewReplayer() }

// ReplayJournal replays an append-only JSONL decision log (the
// JournalOptions.Sink format) and returns the state after the last event.
func ReplayJournal(r io.Reader) (*Replayer, error) { return journal.ReplayJSONL(r) }

// ProjectRanges reduces an engine snapshot to the event-determined fields
// (partition, classification, sketch provenance), for comparison against a
// Replayer.Snapshot.
func ProjectRanges(infos []RangeInfo) []RangeView { return journal.Project(infos) }

// RangeViewsEqual compares a replayed snapshot against a projected engine
// snapshot, ignoring LastSeq (which the engine does not track).
func RangeViewsEqual(replayed, engine []RangeView) bool { return journal.Equal(replayed, engine) }

// Crash-safety types. A CheckpointManager rotates CRC-guarded checkpoint
// files (atomic rename writes, newest-first restore with fallback past
// corruption); an IngestQueue is the bounded shed-oldest overload buffer
// between collectors and Server.RunQueue. See Engine.MarshalState /
// UnmarshalState, Server.EncodeCheckpoint / RestoreCheckpoint /
// SetCheckpoint, and ReplayJournalTail for the full recovery recipe.
type (
	// CheckpointManager writes, rotates, and restores checkpoint files.
	CheckpointManager = persist.Manager
	// CheckpointOptions configures a CheckpointManager (directory, retained
	// file count, telemetry registry).
	CheckpointOptions = persist.Options
	// IngestQueue is the bounded shed-oldest record buffer consumed by
	// Server.RunQueue.
	IngestQueue = core.IngestQueue
)

// ErrNoCheckpoint is returned by CheckpointManager.Load when the checkpoint
// directory holds no checkpoint (a cold start, not an error condition).
var ErrNoCheckpoint = persist.ErrNoCheckpoint

// NewCheckpointManager returns a checkpoint manager over opts.Dir (created
// if missing), registering ipd_checkpoint_* and ipd_restore_* metrics when
// opts.Registry is set.
func NewCheckpointManager(opts CheckpointOptions) (*CheckpointManager, error) {
	return persist.NewManager(opts)
}

// NewIngestQueue returns a bounded ingest queue (see IngestQueue).
func NewIngestQueue(capacity int) *IngestQueue { return core.NewIngestQueue(capacity) }

// ReplayJournalTail replays the events of an append-only JSONL decision log
// with Seq > afterSeq through apply (typically Engine.ApplyEvent or
// Server.ApplyEvent after restoring a checkpoint covering 1..afterSeq) and
// returns how many events were applied.
func ReplayJournalTail(r io.Reader, afterSeq uint64, apply func(Event) error) (int, error) {
	return journal.ReplayTail(r, afterSeq, apply)
}

// NewIntrospectHandler returns the /ipd/* introspection handler over src
// (typically a *Server) and an optional journal (nil disables history).
func NewIntrospectHandler(src IntrospectSource, j *Journal) *IntrospectHandler {
	return introspect.New(src, j)
}

// Edge→core delta-shipping types. A DeltaSender runs on an edge collector
// and ships stage-1 flow records to a central core over a resilient framed
// TCP transport (exponential backoff with jitter, heartbeats, a bounded
// shed-oldest spool); a DeltaReceiver listens on the core, acks contiguous
// per-edge offsets so a reconnect handshake resumes exactly once, and merges
// the per-edge streams in deterministic statistical-time order before
// feeding the engine. The merged central partition is byte-identical to a
// single-node run over the concatenated input. Wire sender stats into
// IntrospectHandler.SetCluster and TimelineCollector.SetCluster; pair
// DeltaReceiverConfig.DurableAcks with EncodeClusterCheckpoint /
// DecodeClusterCheckpoint + DeltaReceiver.SetApplied for crash-safe cores.
type (
	// DeltaSender is the edge-side shipping transport.
	DeltaSender = delta.Sender
	// DeltaSenderConfig parameterizes a DeltaSender (target, edge id,
	// spool cap, heartbeat, batch size, governor gate).
	DeltaSenderConfig = delta.SenderConfig
	// DeltaSenderStats is the sender's JSON stats snapshot.
	DeltaSenderStats = delta.SenderStats
	// DeltaReceiver is the core-side listener and merge gate.
	DeltaReceiver = delta.Receiver
	// DeltaReceiverConfig parameterizes a DeltaReceiver (expected edges,
	// heartbeat, buffer cap, merge-stall override, apply callback,
	// durable-ack mode).
	DeltaReceiverConfig = delta.ReceiverConfig
	// DeltaReceiverStats is the receiver's JSON stats snapshot.
	DeltaReceiverStats = delta.ReceiverStats
	// DeltaReceiverEdgeStats is one edge's slice of DeltaReceiverStats.
	DeltaReceiverEdgeStats = delta.ReceiverEdgeStats
	// ClusterStatus is the /ipd/cluster introspection body (role plus the
	// role's transport snapshot).
	ClusterStatus = delta.ClusterStatus
	// TimelineClusterCounters is the role-agnostic transport counter set a
	// TimelineCollector turns into per-cycle delta.* series.
	TimelineClusterCounters = timeline.ClusterCounters
)

// NewDeltaSender validates cfg, applies defaults (64 KiB spool, 2 s
// heartbeat, 2048-record batches), and starts the connection supervisor.
func NewDeltaSender(cfg DeltaSenderConfig) (*DeltaSender, error) { return delta.NewSender(cfg) }

// NewDeltaReceiver validates cfg and returns a receiver ready to Serve a
// listener.
func NewDeltaReceiver(cfg DeltaReceiverConfig) (*DeltaReceiver, error) {
	return delta.NewReceiver(cfg)
}

// EncodeClusterCheckpoint wraps an engine state blob with the per-edge
// applied offsets in the CRC-guarded cluster checkpoint envelope.
func EncodeClusterCheckpoint(state []byte, applied map[string]uint64) ([]byte, error) {
	return delta.EncodeClusterCheckpoint(state, applied)
}

// DecodeClusterCheckpoint unwraps a cluster checkpoint envelope back into
// the engine state blob and the per-edge applied offsets.
func DecodeClusterCheckpoint(env []byte) ([]byte, map[string]uint64, error) {
	return delta.DecodeClusterCheckpoint(env)
}

// Flow-record types.
type (
	// Record is a sampled flow record (timestamp, source, ingress).
	Record = flow.Record
	// Ingress identifies a (router, interface) entry point.
	Ingress = flow.Ingress
	// RouterID identifies a border router.
	RouterID = flow.RouterID
	// IfaceID identifies an interface on a router.
	IfaceID = flow.IfaceID
	// TraceWriter encodes records to the binary trace format.
	TraceWriter = flow.Writer
	// TraceReader decodes records from the binary trace format.
	TraceReader = flow.Reader
	// FlowSampler is the deterministic 1-out-of-n packet sampler; the
	// governor raises its boost factor while degraded.
	FlowSampler = flow.Sampler
)

// NewFlowSampler returns a deterministic 1-out-of-n sampler (n <= 1 passes
// everything; seed 0 selects a fixed default).
func NewFlowSampler(n int, seed uint64) *FlowSampler { return flow.NewSampler(n, seed) }

// Statistical-time types.
type (
	// StatTimeConfig parameterizes the router-clock-drift-tolerant input
	// bucketing of §3.1.
	StatTimeConfig = stattime.Config
)

// Topology types (LAG bundles, PoPs/countries, link classes, miss
// taxonomy).
type (
	// Topology is the ISP inventory model; it implements IngressMapper.
	Topology = topology.T
	// MissKind classifies a misprediction (interface / router / PoP).
	MissKind = topology.MissKind
	// LinkClass categorizes a border link (PNI, peering, transit, ...).
	LinkClass = topology.LinkClass
	// ASN is an autonomous system number.
	ASN = topology.ASN
)

// Output-trace types (Appendix B format).
type (
	// OutputRow is one raw IPD output trace row.
	OutputRow = export.Row
)

// LookupTable is the longest-prefix-match table built from classified
// ranges (Engine.LookupTable / Server.LookupTable).
type LookupTable = trie.Trie[flow.Ingress]

// Telemetry types. Every Engine (and Server) maintains a TelemetryRegistry
// of atomic counters, gauges, and histograms covering stage-1 ingest,
// stage-2 cycles, and the statistical-time binner; obtain it via the
// Telemetry() accessor and expose it with Handler (Prometheus text format)
// or JSONHandler (expvar-style dump). Scrapes never contend with ingest.
type (
	// TelemetryRegistry names metrics for exposition
	// (Engine.Telemetry / Server.Telemetry).
	TelemetryRegistry = telemetry.Registry
	// TelemetryCounter is a monotonic atomic counter.
	TelemetryCounter = telemetry.Counter
	// TelemetryGauge is an atomic instantaneous value.
	TelemetryGauge = telemetry.Gauge
	// TelemetryHistogram is a fixed-bucket cumulative histogram.
	TelemetryHistogram = telemetry.Histogram
)

// NewTelemetryRegistry returns an empty metric registry (engines create
// their own; this is for auxiliary metric sets such as flow-codec counters).
func NewTelemetryRegistry() *TelemetryRegistry { return telemetry.NewRegistry() }

// RegisterProcessMetrics adds Go-runtime gauges (heap, GC, goroutines) and
// the ipd_build_info gauge to reg; binaries call it once on their serving
// registry.
func RegisterProcessMetrics(reg *TelemetryRegistry) { telemetry.RegisterProcessMetrics(reg) }

// RegisterBuildInfo adds only the constant ipd_build_info gauge (version, go
// runtime, GOMAXPROCS labels); RegisterProcessMetrics already includes it.
func RegisterBuildInfo(reg *TelemetryRegistry) { telemetry.RegisterBuildInfo(reg) }

// NewFlowMetrics returns the flow-layer metric set (trace decode outcomes,
// sampler decisions), registered under ipd_flow_* when reg is non-nil. Attach
// it to TraceReaders via SetMetrics.
func NewFlowMetrics(reg *TelemetryRegistry) *flow.Metrics { return flow.NewMetrics(reg) }

// Synthetic workload types (the laptop-scale stand-in for a tier-1 ISP's
// border NetFlow; see DESIGN.md).
type (
	// SimSpec parameterizes a synthetic tier-1 scenario.
	SimSpec = trafficgen.Spec
	// SimScenario is a materialized synthetic world with recomputable
	// ground truth.
	SimScenario = trafficgen.Scenario
	// SimGenConfig parameterizes flow-stream generation.
	SimGenConfig = trafficgen.GenConfig
	// SimAS is one synthetic neighbor AS.
	SimAS = trafficgen.AS
	// SimFaultSpec describes deterministic per-router exporter faults
	// (datagram loss, clock skew, silent windows) layered on a generated
	// stream; pair with NewExporterHealth to exercise the detectors.
	SimFaultSpec = trafficgen.FaultSpec
	// SimFaultWindow is a half-open [From, To) offset interval.
	SimFaultWindow = trafficgen.Window
	// SimV5Packer packs generated records into NetFlow v5 datagrams with
	// sequence-accurate fault injection.
	SimV5Packer = trafficgen.V5Packer
)

// DefaultConfig returns the paper's deployment parameterization (Table 1):
// cidr_max /28 and /48, n_cidr factors 64 and 24, q = 0.95, t = 60 s,
// e = 120 s, and the default decay.
func DefaultConfig() Config { return core.DefaultConfig() }

// DefaultDecay is the Table-1 decay function: 1 - 0.9/((age/t)+1).
func DefaultDecay(age, t time.Duration) float64 { return core.DefaultDecay(age, t) }

// NewEngine validates cfg and returns a ready engine with the /0 roots
// active.
func NewEngine(cfg Config) (*Engine, error) { return core.NewEngine(cfg) }

// NewServer builds the online wrapper: statistical-time cleaning in front
// of an engine, with concurrent snapshot access.
func NewServer(cfg Config, st StatTimeConfig) (*Server, error) {
	return core.NewServer(cfg, st)
}

// DefaultStatTimeConfig mirrors the deployment defaults (60-second buckets,
// 5-minute skew bound).
func DefaultStatTimeConfig() StatTimeConfig { return stattime.DefaultConfig() }

// NewTraceWriter returns a writer for the binary flow-trace format.
func NewTraceWriter(w io.Writer) *TraceWriter { return flow.NewWriter(w) }

// NewTraceReader returns a reader for the binary flow-trace format.
func NewTraceReader(r io.Reader) *TraceReader { return flow.NewReader(r) }

// DefaultSimSpec returns the laptop-scale synthetic tier-1 scenario spec:
// 36 neighbor ASes (TOP5 = 52% of volume, TOP20 = 80%, 16 tier-1 peers) on
// a 48-router international footprint.
func DefaultSimSpec() SimSpec { return trafficgen.DefaultSpec() }

// NewSimScenario materializes a synthetic scenario.
func NewSimScenario(spec SimSpec) (*SimScenario, error) {
	return trafficgen.NewScenario(spec)
}

// DefaultSimGenConfig returns generation defaults suitable for examples.
func DefaultSimGenConfig() SimGenConfig { return trafficgen.DefaultGenConfig() }

// NewSimRecordFaults returns a record-level fault filter for trace
// generation; see trafficgen.RecordFaults.
func NewSimRecordFaults(spec SimFaultSpec, start time.Time) (func(Record) (Record, bool), error) {
	return trafficgen.RecordFaults(spec, start)
}

// NewSimV5Packer builds a datagram-level fault injector; see
// trafficgen.NewV5Packer.
func NewSimV5Packer(spec SimFaultSpec, start time.Time,
	emit func(router RouterID, payload []byte, at time.Time)) (*SimV5Packer, error) {
	return trafficgen.NewV5Packer(spec, start, emit)
}

// WriteOutputSnapshot writes mapped ranges in the Appendix-B raw trace
// format; label may be nil (plain "Rr.i" labels) or Topology.Label for
// country-qualified labels.
func WriteOutputSnapshot(w io.Writer, at time.Time, infos []RangeInfo, label func(Ingress) string) error {
	return export.WriteSnapshot(w, at, infos, label)
}
